module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

type t = {
  mutable primary : Dir_server.t;
  backup : Dir_server.t;
  primary_store : Bullet_core.Client.t;
  backup_store : Bullet_core.Client.t;
  config : Dir_server.config;
  seed : int64;
  mutable primary_up : bool;
}

let create ?(config = Dir_server.default_config) ?(seed = 0x50414952L) ~primary_store ~backup_store
    () =
  (* same seed: both replicas are the same deterministic state machine,
     so they mint identical ports, object numbers and seals *)
  let primary = Dir_server.create ~config ~seed ~store:primary_store () in
  let backup = Dir_server.create ~config ~seed ~store:backup_store () in
  { primary; backup; primary_store; backup_store; config; seed; primary_up = true }

let port t = Dir_server.port t.backup

let root t = Dir_server.root t.backup

let primary_alive t = t.primary_up

let fail_primary t = t.primary_up <- false

let heal_primary t =
  if not t.primary_up then begin
    (* rebuild the primary replica from the backup's state: checkpoint on
       the backup's store, restore reading from there but persisting to
       the primary's store from now on *)
    match Dir_server.checkpoint t.backup with
    | Error _ -> ()
    | Ok checkpoint -> (
      match
        Dir_server.restore ~config:t.config ~seed:t.seed ~from:t.backup_store
          ~store:t.primary_store checkpoint
      with
      | Ok revived ->
        (* re-persist every directory onto the primary's store so the
           replica is self-contained again *)
        Dir_server.repersist revived;
        t.primary <- revived;
        t.primary_up <- true
      | Error _ -> ())
  end

let mutating command =
  command = Dir_proto.cmd_make_dir || command = Dir_proto.cmd_enter
  || command = Dir_proto.cmd_replace || command = Dir_proto.cmd_remove_name
  || command = Dir_proto.cmd_delete_dir

(* Every 2PC leg mutates replica state (intents, applied decisions, the
   committed bindings themselves): all of them go to both replicas. *)
let txn_command command =
  command = Dir_proto.cmd_txn_prepare || command = Dir_proto.cmd_txn_commit
  || command = Dir_proto.cmd_txn_abort

(* Lease grants mutate replica state too (the lease horizon): both
   replicas must record every promise, or a fail-over could let the
   survivor mutate before a lease granted by its peer has drained. *)
let lease_granting command =
  command = Dir_proto.cmd_lookup_lease || command = Dir_proto.cmd_renew_lease

let dispatch t request =
  let command = request.Message.command in
  if command = Dir_proto.cmd_checkpoint then
    (* checkpointing is per-replica persistence, not replicated state *)
    Dir_proto.dispatch (if t.primary_up then t.primary else t.backup) request
  else if mutating command || lease_granting command || txn_command command then begin
    let reply_backup = Dir_proto.dispatch t.backup request in
    if t.primary_up then begin
      let reply_primary = Dir_proto.dispatch t.primary request in
      (* deterministic replicas: both replies agree; serve the primary's *)
      reply_primary
    end
    else reply_backup
  end
  else Dir_proto.dispatch (if t.primary_up then t.primary else t.backup) request

(* At-most-once execution for xid-stamped requests, as the Bullet serve
   loop does: an injected duplicate of a 2PC leg (or a client retry whose
   reply was lost) gets the remembered reply instead of running twice.
   Ordinary directory operations carry xid = 0 and bypass the cache. *)
let dedup ~capacity service =
  let replies : (int, Message.t) Hashtbl.t = Hashtbl.create capacity in
  let order = Queue.create () in
  fun request ->
    let xid = request.Message.xid in
    if xid = 0 then service request
    else
      match Hashtbl.find_opt replies xid with
      | Some reply -> reply
      | None ->
        let reply = service request in
        if Hashtbl.length replies >= capacity then Hashtbl.remove replies (Queue.pop order);
        Hashtbl.replace replies xid reply;
        Queue.add xid order;
        reply

let serve ?(dedup_capacity = 1024) t transport =
  Amoeba_rpc.Transport.register transport (port t) (dedup ~capacity:dedup_capacity (dispatch t))

(* recursive comparison of the two replicas' name spaces *)
let primary t = t.primary

let backup t = t.backup

(* A canonical, byte-comparable rendering of one replica's directory
   state: every path with its capability, in listing order. Two replicas
   that converged produce identical strings — same names, same object
   numbers, same seals. *)
let dump_replica server =
  let service = Dir_server.port server in
  let buf = Buffer.create 256 in
  let rec walk path cap =
    Buffer.add_string buf path;
    Buffer.add_char buf ' ';
    Buffer.add_string buf (Cap.to_string cap);
    Buffer.add_char buf '\n';
    match Dir_server.list server cap with
    | Error _ -> ()
    | Ok rows ->
      List.iter
        (fun (name, child) ->
          let child_path = path ^ "/" ^ name in
          if Amoeba_cap.Port.equal child.Cap.port service then walk child_path child
          else begin
            Buffer.add_string buf child_path;
            Buffer.add_char buf ' ';
            Buffer.add_string buf (Cap.to_string child);
            Buffer.add_char buf '\n'
          end)
        rows
  in
  walk "" (Dir_server.root server);
  Buffer.contents buf

let replica_dumps t = (dump_replica t.primary, dump_replica t.backup)

let divergence t =
  let service = port t in
  let rec compare_dir path cap_a cap_b =
    match (Dir_server.list t.primary cap_a, Dir_server.list t.backup cap_b) with
    | Error _, Error _ -> None
    | Error _, Ok _ | Ok _, Error _ -> Some path
    | Ok rows_a, Ok rows_b ->
      if List.map fst rows_a <> List.map fst rows_b then Some path
      else
        let check_row acc (name, cap_a') =
          match acc with
          | Some _ -> acc
          | None -> (
            let cap_b' = List.assoc name rows_b in
            let child = path ^ "/" ^ name in
            (* directory entries recurse; leaf capabilities must agree *)
            if Amoeba_cap.Port.equal cap_a'.Cap.port service then
              compare_dir child cap_a' cap_b'
            else if Cap.equal cap_a' cap_b' then None
            else Some child)
        in
        List.fold_left check_row None rows_a
  in
  compare_dir "" (Dir_server.root t.primary) (Dir_server.root t.backup)
