(** Directory service wire protocol.

    The directory capability travels in the header capability slot;
    names and secondary capabilities travel in the body ([target-cap ++
    name] for enter/replace). *)

val cmd_make_dir : int

val cmd_lookup : int

val cmd_enter : int

val cmd_replace : int

val cmd_remove_name : int

val cmd_list : int

val cmd_delete_dir : int

val cmd_versions : int

val cmd_restrict : int

val cmd_checkpoint : int

val cmd_get_root : int

val cmd_resolve : int

val cmd_lookup_lease : int
(** Like [cmd_lookup] but also grants a lease: reply carries the bound
    capability plus [arg0] = directory epoch, [arg1] = lease duration µs. *)

val cmd_renew_lease : int
(** Cheap revalidation: reply [arg0] = epoch, [arg1] = lease duration µs. *)

val cmd_txn_prepare : int
(** 2PC prepare ([arg0] = txn id, body = {!encode_txn_intent}): vote on
    one binding action and lock the binding under an intent. The reply
    status is the vote. Commands 25..27 (and the Bullet service's
    20..22) are globally unique so the fault injector can classify 2PC
    legs by command number. *)

val cmd_txn_commit : int
(** 2PC commit ([arg0] = txn id, body = the intent again). Idempotent;
    carries the full intent so an amnesiac (healed) replica can still
    apply the decision. *)

val cmd_txn_abort : int
(** 2PC abort ([arg0] = txn id): presumed abort — drops every intent of
    the transaction, unknown ids answer [Ok]. *)

val encode_named_cap : Amoeba_cap.Capability.t -> string -> bytes
(** Body layout of enter/replace requests: target capability followed by
    the name. *)

val encode_txn_intent : Dir_server.intent_op -> string -> bytes
(** Body layout of txn prepare/commit requests: a one-byte op tag, the
    target capability for enter/replace, then the name. *)

val decode_txn_intent : bytes -> (Dir_server.intent_op * string) option

val encode_listing : (string * Amoeba_cap.Capability.t) list -> bytes

val decode_listing : bytes -> (string * Amoeba_cap.Capability.t) list

val encode_caps : Amoeba_cap.Capability.t list -> bytes

val decode_caps : bytes -> Amoeba_cap.Capability.t list

val dispatch : Dir_server.t -> Amoeba_rpc.Message.t -> Amoeba_rpc.Message.t

val serve : Dir_server.t -> Amoeba_rpc.Transport.t -> unit
