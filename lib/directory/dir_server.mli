(** The Amoeba directory server.

    "Directories are two-column tables, the first column containing
    names, and the second containing the corresponding capabilities.
    Directories are objects themselves, and can be addressed by
    capabilities." (paper §2.1)

    This server provides naming and versioning for Bullet files (and any
    other capability). Each directory is persisted {e as a Bullet file}:
    every mutation serialises the directory and creates a {e new}
    immutable file, then deletes the old one — the paper's version
    mechanism in action, and the reason client caching of immutable files
    is trivially consistent ("checking if a cached copy of a file is
    still current is simply done by looking up its capability in the
    directory service").

    Each name holds a stack of versions (newest first, as in the Cedar
    file system the paper cites); installing a version beyond the
    configured depth deletes the oldest from the Bullet server. *)

type t

type config = {
  cpu_request_us : int;  (** per-request CPU *)
  max_versions : int;  (** versions retained per name (≥ 1) *)
  p_factor : int;  (** paranoia factor for directory file writes *)
  lease_us : int;  (** duration of binding leases granted to clients *)
}

val default_config : config
(** 1 ms CPU, 3 versions, P-FACTOR 2, 500 ms leases. *)

val create : ?config:config -> ?seed:int64 -> store:Bullet_core.Client.t -> unit -> t
(** A directory server backed by the given Bullet service. The root
    directory is created immediately. *)

val port : t -> Amoeba_cap.Port.t

val root : t -> Amoeba_cap.Capability.t
(** Capability for the root directory, with all rights. *)

val stats : t -> Amoeba_sim.Stats.t

(** {1 Operations} *)

val make_dir : t -> Amoeba_cap.Capability.t
(** Create a fresh, empty directory object (not yet named anywhere). *)

val lookup :
  t -> Amoeba_cap.Capability.t -> string -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Newest version bound to the name; needs the read right. *)

val enter :
  t ->
  Amoeba_cap.Capability.t ->
  string ->
  Amoeba_cap.Capability.t ->
  (unit, Amoeba_rpc.Status.t) result
(** Bind a name. Fails with [Exists] if already bound (use {!replace} to
    install a new version); needs the modify right. *)

val replace :
  t ->
  Amoeba_cap.Capability.t ->
  string ->
  Amoeba_cap.Capability.t ->
  (Amoeba_cap.Capability.t option, Amoeba_rpc.Status.t) result
(** Atomically install a new version of a binding, returning the previous
    newest version (if any). Retains up to [max_versions]; older Bullet
    files are deleted. The binding need not exist yet. *)

val versions :
  t -> Amoeba_cap.Capability.t -> string -> (Amoeba_cap.Capability.t list, Amoeba_rpc.Status.t) result
(** All retained versions, newest first. *)

(** {1 Leases}

    Gray & Cheriton leases over directory bindings, the invalidation
    protocol for client whole-file caches ({!Amoeba_lease.Station}).
    Every directory carries an {e epoch}, bumped by {!replace} and
    {!remove_name}. A lease is a promise that the epoch will not change
    before [now + lease_us]: epoch-bumping mutations first wait out the
    latest granted horizon on the simulated clock (the write-wait), so a
    client that discards cached bindings when its lease deadline passes
    can never serve a byte that a completed mutation replaced. *)

val lookup_lease :
  t ->
  Amoeba_cap.Capability.t ->
  string ->
  (Amoeba_cap.Capability.t * int * int, Amoeba_rpc.Status.t) result
(** {!lookup} plus a lease: [(newest, epoch, lease_us)]. The client must
    date the lease from its {e request send} time, which is never later
    than the server's grant time. *)

val renew_lease :
  t -> Amoeba_cap.Capability.t -> (int * int, Amoeba_rpc.Status.t) result
(** The cheap revalidation call: grants a fresh lease on the directory and
    returns [(epoch, lease_us)]. If the epoch matches what the client saw
    at {!lookup_lease} time, every binding it cached from this directory
    is still current; otherwise it must re-look-up. *)

val epoch : t -> Amoeba_cap.Capability.t -> (int, Amoeba_rpc.Status.t) result
(** Current epoch of a directory (no lease granted, no CPU charge);
    for tests and tooling. *)

val resolve :
  t -> Amoeba_cap.Capability.t -> string -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Walk a "/"-separated path server-side in one call — one RPC instead
    of one per component, which matters when the directory server sits
    across a gateway. Empty components are ignored; intermediate
    components must name directories of this server. *)

val remove_name :
  t -> Amoeba_cap.Capability.t -> string -> (unit, Amoeba_rpc.Status.t) result
(** Drop a binding (all versions). The named objects themselves are not
    deleted — capabilities may be shared. *)

val list : t -> Amoeba_cap.Capability.t -> ((string * Amoeba_cap.Capability.t) list, Amoeba_rpc.Status.t) result
(** Current bindings, name-sorted, newest version of each. *)

val delete_dir : t -> Amoeba_cap.Capability.t -> (unit, Amoeba_rpc.Status.t) result
(** Delete an (empty) directory object; [Bad_request] if non-empty. *)

val restrict :
  t ->
  Amoeba_cap.Capability.t ->
  Amoeba_cap.Rights.t ->
  (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result

(** {1 Two-phase commit participant}

    The directory side of the {!Amoeba_txn} protocol. A prepare
    validates one binding action and records an {e intent} — a lock on
    that binding: until the coordinator decides, conflicting ordinary
    mutations and other transactions' prepares on the same binding are
    refused with [Exists]. Commit applies the action through the normal
    mutation path (so epoch bumps still wait out granted lease horizons)
    and remembers the decision so a coordinator re-send is answered [Ok]
    rather than applied twice; abort is by transaction id and unknown
    transactions answer [Ok] (presumed abort). Intents and applied
    decisions are replicated, deterministic state: the checkpoint
    carries both — unlike lease horizons — so a replica healed from its
    peer still knows its in-doubt bindings. *)

type intent_op =
  | Txn_enter of Amoeba_cap.Capability.t
  | Txn_replace of Amoeba_cap.Capability.t
  | Txn_remove

val txn_prepare :
  t ->
  txn:int ->
  Amoeba_cap.Capability.t ->
  string ->
  intent_op ->
  (unit, Amoeba_rpc.Status.t) result
(** Vote on one binding action. [Ok] locks the binding under an intent;
    any error is a no-vote: [Exists] for a locked binding or an
    already-bound {!Txn_enter} name, [Not_found] for a {!Txn_remove} of
    an unbound name. Needs the modify right. *)

val txn_commit :
  t ->
  txn:int ->
  Amoeba_cap.Capability.t ->
  string ->
  intent_op ->
  (unit, Amoeba_rpc.Status.t) result
(** Apply a decided action and drop its intent. Idempotent: a decision
    already applied — remembered, or structurally visible (the name
    already binds the committed capability; the removed name is gone) —
    answers [Ok] without mutating. Carries the full intent so a replica
    that lost the prepare to a heal can still comply. *)

val txn_abort : t -> txn:int -> (unit, Amoeba_rpc.Status.t) result
(** Drop every intent of the transaction. Always [Ok] — aborting an
    unknown transaction is the presumed-abort rule at work. *)

val txn_pending : t -> (int * int * string) list
(** Pending intents as [(txn, dir object, name)] triples, in prepare
    order; for experiments and fsck-style audits. *)

val txn_pending_count : t -> int

(** {1 Persistence} *)

val checkpoint : t -> (Amoeba_cap.Capability.t, Amoeba_rpc.Status.t) result
(** Serialise the server's directory table to a new Bullet file and
    return its capability; give it to {!restore} after a restart. Each
    checkpoint deletes the previous checkpoint file. *)

val restore :
  ?config:config ->
  ?seed:int64 ->
  ?from:Bullet_core.Client.t ->
  store:Bullet_core.Client.t ->
  Amoeba_cap.Capability.t ->
  (t, Amoeba_rpc.Status.t) result
(** Rebuild a directory server from a checkpoint capability. The [seed]
    must match the original server's so capability seals verify. The
    checkpoint and directory files are read through [from] (default
    [store]); future persistence goes through [store] — this is how a
    replica is rebuilt from its peer's storage (see {!Dir_pair}). *)

val repersist : t -> unit
(** Rewrite every directory as a fresh Bullet file through this server's
    own store; used after a cross-store {!restore} so the replica no
    longer depends on its peer's files. *)
