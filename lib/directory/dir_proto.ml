module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

let cmd_make_dir = 1

let cmd_lookup = 2

let cmd_enter = 3

let cmd_replace = 4

let cmd_remove_name = 5

let cmd_list = 6

let cmd_delete_dir = 7

let cmd_versions = 8

let cmd_restrict = 9

let cmd_checkpoint = 10

let cmd_get_root = 11

let cmd_resolve = 12

let cmd_lookup_lease = 13

let cmd_renew_lease = 14

(* Two-phase commit: 25..27 — and the Bullet service's 20..22 — are
   disjoint from every other command number in the system, so the fault
   injector can classify a message's 2PC leg (prepare vs decision) from
   the command alone. *)
let cmd_txn_prepare = 25

let cmd_txn_commit = 26

let cmd_txn_abort = 27

let encode_listing rows =
  let buf = Buffer.create 128 in
  let add_row (name, cap) =
    Buffer.add_char buf (Char.chr ((String.length name lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (String.length name land 0xff));
    Buffer.add_string buf name;
    Buffer.add_bytes buf (Cap.to_bytes cap)
  in
  List.iter add_row rows;
  Buffer.to_bytes buf

let decode_listing data =
  let len = Bytes.length data in
  let rec go pos acc =
    if pos >= len then List.rev acc
    else begin
      let n = (Char.code (Bytes.get data pos) lsl 8) lor Char.code (Bytes.get data (pos + 1)) in
      let name = Bytes.sub_string data (pos + 2) n in
      let cap = Cap.read data (pos + 2 + n) in
      go (pos + 2 + n + Cap.wire_size) ((name, cap) :: acc)
    end
  in
  go 0 []

let encode_caps caps =
  let buf = Bytes.create (List.length caps * Cap.wire_size) in
  List.iteri (fun i cap -> Cap.write cap buf (i * Cap.wire_size)) caps;
  buf

let decode_caps data =
  let count = Bytes.length data / Cap.wire_size in
  let rec go i acc = if i < 0 then acc else go (i - 1) (Cap.read data (i * Cap.wire_size) :: acc) in
  go (count - 1) []

(* Body layout for enter/replace: target capability followed by the name. *)
let encode_named_cap cap name =
  let buf = Bytes.create (Cap.wire_size + String.length name) in
  Cap.write cap buf 0;
  Bytes.blit_string name 0 buf Cap.wire_size (String.length name);
  buf

let decode_named_cap body =
  if Bytes.length body < Cap.wire_size then None
  else
    let cap = Cap.read body 0 in
    let name = Bytes.sub_string body Cap.wire_size (Bytes.length body - Cap.wire_size) in
    Some (cap, name)

(* Body layout for txn prepare/commit: a one-byte op tag, the target
   capability for enter/replace, then the name. *)
let encode_txn_intent op name =
  let buf = Buffer.create 32 in
  (match op with
  | Dir_server.Txn_enter cap ->
    Buffer.add_char buf '\000';
    Buffer.add_bytes buf (Cap.to_bytes cap)
  | Dir_server.Txn_replace cap ->
    Buffer.add_char buf '\001';
    Buffer.add_bytes buf (Cap.to_bytes cap)
  | Dir_server.Txn_remove -> Buffer.add_char buf '\002');
  Buffer.add_string buf name;
  Buffer.to_bytes buf

let decode_txn_intent body =
  let len = Bytes.length body in
  if len < 1 then None
  else
    let tail pos = Bytes.sub_string body pos (len - pos) in
    match Bytes.get body 0 with
    | '\000' when len >= 1 + Cap.wire_size ->
      Some (Dir_server.Txn_enter (Cap.read body 1), tail (1 + Cap.wire_size))
    | '\001' when len >= 1 + Cap.wire_size ->
      Some (Dir_server.Txn_replace (Cap.read body 1), tail (1 + Cap.wire_size))
    | '\002' -> Some (Dir_server.Txn_remove, tail 1)
    | _ -> None

let reply_of_result ~encode = function
  | Ok v -> encode v
  | Error status -> Message.error status

let with_cap request k =
  match request.Message.cap with
  | None -> Message.error Status.Bad_request
  | Some cap -> k cap

let name_of request = Bytes.to_string request.Message.body

let dispatch server request =
  let command = request.Message.command in
  let ok_unit () = Message.reply ~status:Status.Ok () in
  if command = cmd_make_dir then Message.reply ~status:Status.Ok ~cap:(Dir_server.make_dir server) ()
  else if command = cmd_get_root then Message.reply ~status:Status.Ok ~cap:(Dir_server.root server) ()
  else if command = cmd_lookup then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun found -> Message.reply ~status:Status.Ok ~cap:found ())
          (Dir_server.lookup server cap (name_of request)))
  else if command = cmd_enter then
    with_cap request (fun cap ->
        match decode_named_cap request.Message.body with
        | None -> Message.error Status.Bad_request
        | Some (target, name) ->
          reply_of_result ~encode:ok_unit (Dir_server.enter server cap name target))
  else if command = cmd_replace then
    with_cap request (fun cap ->
        match decode_named_cap request.Message.body with
        | None -> Message.error Status.Bad_request
        | Some (target, name) ->
          reply_of_result
            ~encode:(fun previous ->
              match previous with
              | Some old -> Message.reply ~status:Status.Ok ~arg0:1 ~cap:old ()
              | None -> Message.reply ~status:Status.Ok ~arg0:0 ())
            (Dir_server.replace server cap name target))
  else if command = cmd_remove_name then
    with_cap request (fun cap ->
        reply_of_result ~encode:ok_unit (Dir_server.remove_name server cap (name_of request)))
  else if command = cmd_list then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun rows -> Message.reply ~status:Status.Ok ~body:(encode_listing rows) ())
          (Dir_server.list server cap))
  else if command = cmd_delete_dir then
    with_cap request (fun cap ->
        reply_of_result ~encode:ok_unit (Dir_server.delete_dir server cap))
  else if command = cmd_versions then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun caps -> Message.reply ~status:Status.Ok ~body:(encode_caps caps) ())
          (Dir_server.versions server cap (name_of request)))
  else if command = cmd_restrict then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun narrowed -> Message.reply ~status:Status.Ok ~cap:narrowed ())
          (Dir_server.restrict server cap (Amoeba_cap.Rights.of_int request.Message.arg0)))
  else if command = cmd_resolve then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun found -> Message.reply ~status:Status.Ok ~cap:found ())
          (Dir_server.resolve server cap (name_of request)))
  else if command = cmd_lookup_lease then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun (found, epoch, lease_us) ->
            Message.reply ~status:Status.Ok ~cap:found ~arg0:epoch ~arg1:lease_us ())
          (Dir_server.lookup_lease server cap (name_of request)))
  else if command = cmd_renew_lease then
    with_cap request (fun cap ->
        reply_of_result
          ~encode:(fun (epoch, lease_us) ->
            Message.reply ~status:Status.Ok ~arg0:epoch ~arg1:lease_us ())
          (Dir_server.renew_lease server cap))
  else if command = cmd_txn_prepare then
    with_cap request (fun cap ->
        match decode_txn_intent request.Message.body with
        | None -> Message.error Status.Bad_request
        | Some (op, name) ->
          reply_of_result ~encode:ok_unit
            (Dir_server.txn_prepare server ~txn:request.Message.arg0 cap name op))
  else if command = cmd_txn_commit then
    with_cap request (fun cap ->
        match decode_txn_intent request.Message.body with
        | None -> Message.error Status.Bad_request
        | Some (op, name) ->
          reply_of_result ~encode:ok_unit
            (Dir_server.txn_commit server ~txn:request.Message.arg0 cap name op))
  else if command = cmd_txn_abort then
    reply_of_result ~encode:ok_unit (Dir_server.txn_abort server ~txn:request.Message.arg0)
  else if command = cmd_checkpoint then
    reply_of_result
      ~encode:(fun cap -> Message.reply ~status:Status.Ok ~cap ())
      (Dir_server.checkpoint server)
  else Message.error Status.Bad_request

let serve server transport =
  Amoeba_rpc.Transport.register transport (Dir_server.port server) (dispatch server)
