module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

type config = { cpu_request_us : int; max_versions : int; p_factor : int; lease_us : int }

let default_config = { cpu_request_us = 1_000; max_versions = 3; p_factor = 2; lease_us = 500_000 }

type binding = { name : string; versions : Cap.t list (* newest first, non-empty *) }

(* ---- two-phase commit intents ----

   A prepared-but-undecided action on one binding. Intents are replicated
   state: the pair dispatches every txn command to both replicas and the
   checkpoint carries them (unlike lease horizons, they are deterministic
   across the pair), so a healed replica still knows its in-doubt
   bindings. *)

type intent_op = Txn_enter of Cap.t | Txn_replace of Cap.t | Txn_remove

type intent = { txn : int; dir_obj : int; iname : string; op : intent_op }

(* A decision the server has already applied, remembered so a coordinator
   re-send after recovery is answered Ok instead of applied twice. *)
type applied = { a_txn : int; a_obj : int; a_name : string }

let applied_window = 64

type dir = {
  random : int64;
  mutable rows : binding list; (* sorted by name *)
  mutable file : Cap.t option; (* the Bullet file persisting this directory *)
  mutable epoch : int; (* bumped on replace/remove so leased clients revalidate *)
  mutable leases_until : int; (* latest lease horizon granted on this dir, µs *)
}

type t = {
  config : config;
  store : Bullet_core.Client.t;
  sealer : Amoeba_cap.Sealer.t;
  seed : int64;
  service_port : Amoeba_cap.Port.t;
  clock : Amoeba_sim.Clock.t;
  dirs : (int, dir) Hashtbl.t;
  stats : Amoeba_sim.Stats.t;
  mutable next_obj : int;
  mutable root_obj : int;
  mutable checkpoint_file : Cap.t option;
  mutable intents : intent list; (* prepared, undecided; insertion order *)
  mutable applied : applied list; (* newest first, at most applied_window *)
}

(* ---- serialisation ---- *)

let add_u16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u32 buf v =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_u64 buf v =
  for i = 7 downto 0 do
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff))
  done

let add_cap buf cap =
  let raw = Cap.to_bytes cap in
  Buffer.add_bytes buf raw

type reader = { data : bytes; mutable pos : int }

let read_u16 r =
  let v = (Char.code (Bytes.get r.data r.pos) lsl 8) lor Char.code (Bytes.get r.data (r.pos + 1)) in
  r.pos <- r.pos + 2;
  v

let read_u32 r =
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let read_u64 r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code (Bytes.get r.data r.pos)));
    r.pos <- r.pos + 1
  done;
  !v

let read_cap r =
  let cap = Cap.read r.data r.pos in
  r.pos <- r.pos + Cap.wire_size;
  cap

let encode_rows rows =
  let buf = Buffer.create 256 in
  add_u32 buf (List.length rows);
  let encode_binding b =
    add_u16 buf (String.length b.name);
    Buffer.add_string buf b.name;
    add_u16 buf (List.length b.versions);
    List.iter (add_cap buf) b.versions
  in
  List.iter encode_binding rows;
  Buffer.to_bytes buf

let decode_rows data =
  let r = { data; pos = 0 } in
  let count = read_u32 r in
  let decode_binding () =
    let len = read_u16 r in
    let name = Bytes.sub_string r.data r.pos len in
    r.pos <- r.pos + len;
    let nvers = read_u16 r in
    (* explicit recursion: the reader is stateful, order matters *)
    let rec caps n = if n = 0 then [] else let c = read_cap r in c :: caps (n - 1) in
    { name; versions = caps nvers }
  in
  let rec bindings n = if n = 0 then [] else let b = decode_binding () in b :: bindings (n - 1) in
  bindings count

(* ---- persistence through the Bullet store ---- *)

let charge_cpu t = Amoeba_sim.Clock.advance t.clock t.config.cpu_request_us

(* Every directory mutation creates a fresh immutable Bullet file and
   deletes the previous one: the paper's versioned-update in miniature. *)
let persist t dir =
  let data = encode_rows dir.rows in
  let fresh = Bullet_core.Client.create t.store ~p_factor:t.config.p_factor data in
  (match dir.file with
  | Some old -> ( try Bullet_core.Client.delete t.store old with Status.Error _ -> ())
  | None -> ());
  dir.file <- Some fresh

let bullet_delete_quietly t cap =
  if Amoeba_cap.Port.equal cap.Cap.port (Bullet_core.Client.port t.store) then
    try Bullet_core.Client.delete t.store cap with Status.Error _ -> ()

(* ---- directory objects ---- *)

let seal_cap t ~obj ~random ~rights =
  Cap.v ~port:t.service_port ~obj ~rights ~check:(Amoeba_cap.Sealer.seal t.sealer ~random ~rights)

(* Per-object protection randoms are derived deterministically from
   (seed, obj) so that replicated directory servers (Dir_pair) mint
   identical capabilities no matter how their histories interleave. *)
let random_for ~seed obj =
  Int64.logand
    (Amoeba_cap.Crypto.one_way (Int64.add seed (Int64.of_int (obj * 2 + 1))))
    0xFFFF_FFFF_FFFFL

let fresh_dir t =
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  let dir =
    { random = random_for ~seed:t.seed obj; rows = []; file = None; epoch = 0; leases_until = 0 }
  in
  Hashtbl.replace t.dirs obj dir;
  persist t dir;
  (obj, dir)

let create ?(config = default_config) ?(seed = 0x444952535256L) ~store () =
  let t =
    {
      config;
      store;
      sealer = Amoeba_cap.Sealer.of_passphrase (Printf.sprintf "dir-%Ld" seed);
      seed;
      service_port = Amoeba_cap.Port.random (Amoeba_sim.Prng.create ~seed:(Int64.add seed 7L));
      clock = Amoeba_rpc.Transport.clock (Bullet_core.Client.transport store);
      dirs = Hashtbl.create 64;
      stats = Amoeba_sim.Stats.create "directory";
      next_obj = 1;
      root_obj = 0;
      checkpoint_file = None;
      intents = [];
      applied = [];
    }
  in
  let obj, _dir = fresh_dir t in
  t.root_obj <- obj;
  t

let port t = t.service_port

let stats t = t.stats

let root_cap_of t obj =
  let dir = Hashtbl.find t.dirs obj in
  seal_cap t ~obj ~random:dir.random ~rights:Amoeba_cap.Rights.all

let root t = root_cap_of t t.root_obj

let make_dir t =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "make_dir";
  let obj, dir = fresh_dir t in
  seal_cap t ~obj ~random:dir.random ~rights:Amoeba_cap.Rights.all

let verify t cap ~need =
  if not (Amoeba_cap.Port.equal cap.Cap.port t.service_port) then Error Status.No_such_object
  else
    match Hashtbl.find_opt t.dirs cap.Cap.obj with
    | None -> Error Status.No_such_object
    | Some dir ->
      if not (Amoeba_cap.Sealer.verify t.sealer ~random:dir.random ~cap) then
        Error Status.Bad_capability
      else if not (Amoeba_cap.Rights.subset need cap.Cap.rights) then Error Status.Bad_capability
      else Ok (cap.Cap.obj, dir)

let ( let* ) = Result.bind

let find_binding dir name = List.find_opt (fun b -> b.name = name) dir.rows

(* A pending intent is a lock on its binding: conflicting ordinary
   mutations — and other transactions' prepares — are refused until the
   coordinator decides. *)
let intent_locked t dir_obj name =
  List.exists (fun i -> i.dir_obj = dir_obj && i.iname = name) t.intents

(* ---- leases (Gray & Cheriton) ----

   A lease is a promise not to change this directory's bindings before a
   horizon. The server only remembers the latest horizon it promised;
   an epoch-bumping mutation first waits the horizon out (the write-wait),
   so a client whose lease deadline is strictly earlier than the server's
   recorded horizon can serve cached data without ever returning a byte
   that a completed mutation replaced. *)

let grant_lease t dir =
  let expiry = Amoeba_sim.Clock.now t.clock + t.config.lease_us in
  if expiry > dir.leases_until then dir.leases_until <- expiry;
  Amoeba_sim.Stats.incr t.stats "leases_granted"

let wait_out_leases t dir =
  let now = Amoeba_sim.Clock.now t.clock in
  if dir.leases_until > now then begin
    Amoeba_sim.Stats.incr t.stats "lease_waits";
    Amoeba_sim.Stats.add t.stats "lease_wait_us" (dir.leases_until - now);
    Amoeba_sim.Clock.advance_to t.clock dir.leases_until
  end

let bump_epoch t dir =
  wait_out_leases t dir;
  dir.epoch <- dir.epoch + 1;
  Amoeba_sim.Stats.incr t.stats "epoch_bumps"

let lookup t cap name =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "lookups";
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  match find_binding dir name with
  | Some { versions = newest :: _; _ } -> Ok newest
  | Some { versions = []; _ } | None -> Error Status.Not_found

let lookup_lease t cap name =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "lookup_leases";
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  match find_binding dir name with
  | Some { versions = newest :: _; _ } ->
    grant_lease t dir;
    Ok (newest, dir.epoch, t.config.lease_us)
  | Some { versions = []; _ } | None -> Error Status.Not_found

let renew_lease t cap =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "lease_renewals";
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  grant_lease t dir;
  Ok (dir.epoch, t.config.lease_us)

let epoch t cap =
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  Ok dir.epoch

let versions t cap name =
  charge_cpu t;
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  match find_binding dir name with
  | Some b -> Ok b.versions
  | None -> Error Status.Not_found

let resolve t cap path =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "resolves";
  let components = List.filter (fun c -> c <> "") (String.split_on_char '/' path) in
  let step acc name =
    let* current = acc in
    let* _obj, dir = verify t current ~need:Amoeba_cap.Rights.read in
    match find_binding dir name with
    | Some { versions = newest :: _; _ } -> Ok newest
    | Some { versions = []; _ } | None -> Error Status.Not_found
  in
  List.fold_left step (Ok cap) components

let insert_sorted dir binding =
  let rec go = function
    | [] -> [ binding ]
    | b :: rest -> if binding.name < b.name then binding :: b :: rest else b :: go rest
  in
  dir.rows <- go dir.rows

let enter t cap name target =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "enters";
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.modify in
  if name = "" then Error Status.Bad_request
  else if intent_locked t obj name then Error Status.Exists
  else
    match find_binding dir name with
    | Some _ -> Error Status.Exists
    | None ->
      insert_sorted dir { name; versions = [ target ] };
      persist t dir;
      Ok ()

(* The shared body of replace and a committed Txn_replace: bump the
   epoch (waiting out leases), stack the new version, persist, trim. *)
let install_version t dir name target =
  bump_epoch t dir;
  let previous, retained, trimmed =
    match find_binding dir name with
    | None -> (None, [ target ], [])
    | Some b ->
      let stacked = target :: b.versions in
      let rec take n = function
        | [] -> ([], [])
        | v :: rest ->
          if n = 0 then ([], v :: rest)
          else
            let keep, drop = take (n - 1) rest in
            (v :: keep, drop)
      in
      let keep, drop = take t.config.max_versions stacked in
      let previous = match b.versions with v :: _ -> Some v | [] -> None in
      (previous, keep, drop)
  in
  dir.rows <- List.filter (fun b -> b.name <> name) dir.rows;
  insert_sorted dir { name; versions = retained };
  persist t dir;
  List.iter (bullet_delete_quietly t) trimmed;
  previous

let replace t cap name target =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "replaces";
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.modify in
  if name = "" then Error Status.Bad_request
  else if intent_locked t obj name then Error Status.Exists
  else Ok (install_version t dir name target)

let drop_binding t dir name =
  bump_epoch t dir;
  dir.rows <- List.filter (fun b -> b.name <> name) dir.rows;
  persist t dir

let remove_name t cap name =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "removes";
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.modify in
  if intent_locked t obj name then Error Status.Exists
  else
    match find_binding dir name with
    | None -> Error Status.Not_found
    | Some _ ->
      drop_binding t dir name;
      Ok ()

let list t cap =
  charge_cpu t;
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.read in
  let newest b = match b.versions with v :: _ -> Some (b.name, v) | [] -> None in
  Ok (List.filter_map newest dir.rows)

let delete_dir t cap =
  charge_cpu t;
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.delete in
  if obj = t.root_obj then Error Status.Bad_request
  else if dir.rows <> [] then Error Status.Bad_request
  else if List.exists (fun i -> i.dir_obj = obj) t.intents then Error Status.Exists
  else begin
    (* the dir object disappears, so there is no epoch to bump, but any
       outstanding lease must still drain before the name goes away *)
    wait_out_leases t dir;
    (match dir.file with Some f -> bullet_delete_quietly t f | None -> ());
    Hashtbl.remove t.dirs obj;
    Ok ()
  end

let restrict t cap rights =
  charge_cpu t;
  let* _obj, dir = verify t cap ~need:Amoeba_cap.Rights.none in
  match Amoeba_cap.Sealer.restrict t.sealer ~random:dir.random ~cap ~rights with
  | None -> Error Status.Bad_capability
  | Some narrowed -> Ok narrowed

(* ---- two-phase commit participant ----

   Prepare validates the action and records an intent (the binding
   lock); commit carries the full intent again so an amnesiac replica —
   healed from a checkpoint taken before the prepare — can still apply
   the decision; abort is by transaction id alone and unknown
   transactions answer Ok (presumed abort). *)

let txn_prepare t ~txn cap name op =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_prepares";
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.modify in
  if name = "" then Error Status.Bad_request
  else if intent_locked t obj name then Error Status.Exists
  else
    let* () =
      match op with
      | Txn_enter _ -> (
        match find_binding dir name with Some _ -> Error Status.Exists | None -> Ok ())
      | Txn_replace _ -> Ok ()
      | Txn_remove -> (
        match find_binding dir name with Some _ -> Ok () | None -> Error Status.Not_found)
    in
    t.intents <- t.intents @ [ { txn; dir_obj = obj; iname = name; op } ];
    Ok ()

let note_applied t a =
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  t.applied <- a :: take (applied_window - 1) t.applied

let txn_commit t ~txn cap name op =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_commits";
  let* obj, dir = verify t cap ~need:Amoeba_cap.Rights.modify in
  let a = { a_txn = txn; a_obj = obj; a_name = name } in
  if List.mem a t.applied then Ok () (* coordinator re-send *)
  else begin
    t.intents <-
      List.filter (fun i -> not (i.txn = txn && i.dir_obj = obj && i.iname = name)) t.intents;
    let* () =
      match op with
      | Txn_enter target -> (
        match find_binding dir name with
        | Some { versions = newest :: _; _ } when Cap.equal newest target -> Ok ()
        | Some _ -> Error Status.Exists
        | None ->
          insert_sorted dir { name; versions = [ target ] };
          persist t dir;
          Ok ())
      | Txn_replace target -> (
        match find_binding dir name with
        | Some { versions = newest :: _; _ } when Cap.equal newest target -> Ok ()
        | _ ->
          let (_ : Cap.t option) = install_version t dir name target in
          Ok ())
      | Txn_remove -> (
        match find_binding dir name with
        | None -> Ok ()
        | Some _ ->
          drop_binding t dir name;
          Ok ())
    in
    note_applied t a;
    Ok ()
  end

let txn_abort t ~txn =
  charge_cpu t;
  Amoeba_sim.Stats.incr t.stats "txn_aborts";
  t.intents <- List.filter (fun i -> i.txn <> txn) t.intents;
  Ok ()

let txn_pending t = List.map (fun i -> (i.txn, i.dir_obj, i.iname)) t.intents

let txn_pending_count t = List.length t.intents

let repersist t =
  (* After a cross-store restore the dir files still live on the peer's
     Bullet server; rewrite each through our own store. The old files
     belong to the peer and are left alone (persist only deletes files
     on its own store). *)
  Amoeba_sim.Tbl.sorted_iter Int.compare
    (fun _obj dir ->
      dir.file <- None;
      persist t dir)
    t.dirs

(* ---- checkpoint / restore ---- *)

let checkpoint t =
  charge_cpu t;
  let buf = Buffer.create 256 in
  add_u32 buf t.next_obj;
  add_u32 buf t.root_obj;
  add_u32 buf (Hashtbl.length t.dirs);
  let encode_dir obj dir =
    add_u32 buf obj;
    add_u64 buf dir.random;
    add_u32 buf dir.epoch;
    (* the lease horizon is deliberately NOT checkpointed: replica horizons
       can differ by a CPU charge, and checkpoints must be byte-identical
       across the pair. Restore re-arms a conservative horizon instead. *)
    match dir.file with
    | Some cap ->
      Buffer.add_char buf '\001';
      add_cap buf cap
    | None -> Buffer.add_char buf '\000'
  in
  Amoeba_sim.Tbl.sorted_iter Int.compare encode_dir t.dirs;
  (* 2PC state, unlike lease horizons, IS replicated deterministic state:
     a healed replica must still know its in-doubt bindings and already-
     applied decisions. Intents are written in canonical order so both
     replicas' checkpoints stay byte-identical. *)
  let canonical =
    List.sort
      (fun a b ->
        match Int.compare a.txn b.txn with
        | 0 -> (
          match Int.compare a.dir_obj b.dir_obj with
          | 0 -> String.compare a.iname b.iname
          | c -> c)
        | c -> c)
      t.intents
  in
  add_u32 buf (List.length canonical);
  List.iter
    (fun i ->
      add_u32 buf i.txn;
      add_u32 buf i.dir_obj;
      (match i.op with
      | Txn_enter cap ->
        Buffer.add_char buf '\000';
        add_cap buf cap
      | Txn_replace cap ->
        Buffer.add_char buf '\001';
        add_cap buf cap
      | Txn_remove -> Buffer.add_char buf '\002');
      add_u16 buf (String.length i.iname);
      Buffer.add_string buf i.iname)
    canonical;
  add_u32 buf (List.length t.applied);
  List.iter
    (fun a ->
      add_u32 buf a.a_txn;
      add_u32 buf a.a_obj;
      add_u16 buf (String.length a.a_name);
      Buffer.add_string buf a.a_name)
    t.applied;
  match Bullet_core.Client.create t.store ~p_factor:t.config.p_factor (Buffer.to_bytes buf) with
  | fresh ->
    (match t.checkpoint_file with Some old -> bullet_delete_quietly t old | None -> ());
    t.checkpoint_file <- Some fresh;
    Ok fresh
  | exception Status.Error e -> Error e

let restore ?(config = default_config) ?(seed = 0x444952535256L) ?from ~store checkpoint_cap =
  let from = Option.value from ~default:store in
  match Bullet_core.Client.read from checkpoint_cap with
  | exception Status.Error e -> Error e
  | data ->
    let r = { data; pos = 0 } in
    let next_obj = read_u32 r in
    let root_obj = read_u32 r in
    let count = read_u32 r in
    let t =
      {
        config;
        store;
        sealer = Amoeba_cap.Sealer.of_passphrase (Printf.sprintf "dir-%Ld" seed);
        seed;
        service_port = Amoeba_cap.Port.random (Amoeba_sim.Prng.create ~seed:(Int64.add seed 7L));
        clock = Amoeba_rpc.Transport.clock (Bullet_core.Client.transport store);
        dirs = Hashtbl.create 64;
        stats = Amoeba_sim.Stats.create "directory";
        next_obj;
        root_obj;
        checkpoint_file = Some checkpoint_cap;
        intents = [];
        applied = [];
      }
    in
    let restore_dir () =
      let obj = read_u32 r in
      let random = read_u64 r in
      let epoch = read_u32 r in
      let has_file = Bytes.get r.data r.pos <> '\000' in
      r.pos <- r.pos + 1;
      let file = if has_file then Some (read_cap r) else None in
      let rows =
        match file with
        | None -> []
        | Some cap -> decode_rows (Bullet_core.Client.read from cap)
      in
      (* assume the worst about leases granted before the checkpoint: any
         of them could still be live for up to one full lease term *)
      let leases_until = Amoeba_sim.Clock.now t.clock + config.lease_us in
      Hashtbl.replace t.dirs obj { random; rows; file; epoch; leases_until }
    in
    let read_name () =
      let len = read_u16 r in
      let name = Bytes.sub_string r.data r.pos len in
      r.pos <- r.pos + len;
      name
    in
    let restore_intent () =
      let txn = read_u32 r in
      let dir_obj = read_u32 r in
      let tag = Bytes.get r.data r.pos in
      r.pos <- r.pos + 1;
      let op =
        match tag with
        | '\000' -> Txn_enter (read_cap r)
        | '\001' -> Txn_replace (read_cap r)
        | _ -> Txn_remove
      in
      { txn; dir_obj; iname = read_name (); op }
    in
    let restore_applied () =
      let a_txn = read_u32 r in
      let a_obj = read_u32 r in
      { a_txn; a_obj; a_name = read_name () }
    in
    (try
       for _ = 1 to count do
         restore_dir ()
       done;
       let n_intents = read_u32 r in
       for _ = 1 to n_intents do
         t.intents <- t.intents @ [ restore_intent () ]
       done;
       let n_applied = read_u32 r in
       let applied = ref [] in
       for _ = 1 to n_applied do
         applied := restore_applied () :: !applied
       done;
       t.applied <- List.rev !applied;
       Ok t
     with Status.Error e -> Error e)
