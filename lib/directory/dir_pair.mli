(** A replicated directory service (primary + backup).

    "Throughout the design we have strived for performance, scalability,
    and availability. ... Availability implies the need for replication"
    (paper §2). The Bullet server gets availability from its mirrored
    disks; the directory service gets it here, by state-machine
    replication: the two replicas are deterministic (same seed), every
    mutating operation is applied to both, so they evolve identically —
    same object numbers, same randoms, same capabilities. Reads go to
    the primary; when it fails, the backup answers the very same
    capabilities without any client-visible change.

    Each replica persists its directories through its own Bullet client,
    so the two copies can live on different Bullet servers (different
    machines in a deployment). *)

type t

val create :
  ?config:Dir_server.config ->
  ?seed:int64 ->
  primary_store:Bullet_core.Client.t ->
  backup_store:Bullet_core.Client.t ->
  unit ->
  t
(** Both replicas are created with the same [seed], so their capability
    seals and ports agree. *)

val port : t -> Amoeba_cap.Port.t
(** The service port (shared by both replicas). *)

val root : t -> Amoeba_cap.Capability.t

val primary_alive : t -> bool

val fail_primary : t -> unit
(** Take the primary down; subsequent operations are served by the
    backup alone. *)

val heal_primary : t -> unit
(** Bring the primary back and replay the backup's state onto it (via a
    checkpoint through the primary's store), then resume duplexing. *)

val dispatch : t -> Amoeba_rpc.Message.t -> Amoeba_rpc.Message.t
(** The replicated service: mutations are applied to every live replica,
    reads to the first live one. Replies come from the serving replica
    (identical on both, by construction). *)

val serve : ?dedup_capacity:int -> t -> Amoeba_rpc.Transport.t -> unit
(** Register the pair's dispatcher on its port, wrapped in a bounded
    reply cache keyed by {!Amoeba_rpc.Message.t.xid} (default capacity
    1024, FIFO eviction), so an injected duplicate of a 2PC leg is
    answered from the cache rather than executed twice. Ordinary
    directory operations carry [xid = 0] and bypass it. *)

val divergence : t -> string option
(** Compare the two replicas' listings recursively from the root;
    [None] when they agree, [Some path] naming the first disagreement
    otherwise. For tests and fsck-style auditing. *)

val primary : t -> Dir_server.t
(** The primary replica, for audits (e.g. comparing checkpoints byte
    for byte after a heal). *)

val backup : t -> Dir_server.t

val replica_dumps : t -> string * string
(** A canonical rendering (path + capability per line, recursively from
    the root) of each replica's directory state. Converged replicas
    produce byte-identical strings — stronger than {!divergence}, which
    recurses through directory capabilities instead of comparing
    them. *)
