module Message = Amoeba_rpc.Message
module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

type t = {
  transport : Amoeba_rpc.Transport.t;
  model : Amoeba_rpc.Net_model.t;
  link : Amoeba_rpc.Link.t option;
  service : Amoeba_cap.Port.t;
}

let connect ?(model = Amoeba_rpc.Net_model.amoeba) ?link transport service =
  { transport; model; link; service }

let port t = t.service

let checked t request =
  let reply = Amoeba_rpc.Transport.trans ?link:t.link t.transport ~model:t.model request in
  Status.check reply.Message.status;
  reply

let cap_of reply =
  match reply.Message.cap with
  | Some cap -> cap
  | None -> raise (Status.Error Status.Server_failure)

let body_name name = Bytes.of_string name

let named_cap = Dir_proto.encode_named_cap

let get_root t =
  cap_of (checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_get_root ()))

let make_dir t =
  cap_of (checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_make_dir ()))

let lookup t dir name =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Dir_proto.cmd_lookup ~cap:dir
          ~body:(body_name name) ()))

let lookup_lease t dir name =
  let reply =
    checked t
      (Message.request ~port:t.service ~command:Dir_proto.cmd_lookup_lease ~cap:dir
         ~body:(body_name name) ())
  in
  (cap_of reply, reply.Message.arg0, reply.Message.arg1)

let renew_lease t dir =
  let reply =
    checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_renew_lease ~cap:dir ())
  in
  (reply.Message.arg0, reply.Message.arg1)

let enter t dir name target =
  let (_ : Message.t) =
    checked t
      (Message.request ~port:t.service ~command:Dir_proto.cmd_enter ~cap:dir
         ~body:(named_cap target name) ())
  in
  ()

let replace t dir name target =
  let reply =
    checked t
      (Message.request ~port:t.service ~command:Dir_proto.cmd_replace ~cap:dir
         ~body:(named_cap target name) ())
  in
  if reply.Message.arg0 = 1 then reply.Message.cap else None

let remove_name t dir name =
  let (_ : Message.t) =
    checked t
      (Message.request ~port:t.service ~command:Dir_proto.cmd_remove_name ~cap:dir
         ~body:(body_name name) ())
  in
  ()

let list t dir =
  let reply = checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_list ~cap:dir ()) in
  Dir_proto.decode_listing reply.Message.body

let delete_dir t dir =
  let (_ : Message.t) =
    checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_delete_dir ~cap:dir ())
  in
  ()

let versions t dir name =
  let reply =
    checked t
      (Message.request ~port:t.service ~command:Dir_proto.cmd_versions ~cap:dir
         ~body:(body_name name) ())
  in
  Dir_proto.decode_caps reply.Message.body

let restrict t dir rights =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Dir_proto.cmd_restrict ~cap:dir
          ~arg0:(Amoeba_cap.Rights.to_int rights) ()))

let checkpoint t =
  cap_of (checked t (Message.request ~port:t.service ~command:Dir_proto.cmd_checkpoint ()))

(* ---- two-phase commit legs ----

   Result-typed, not raising: a vote of no and a decision timeout are
   ordinary protocol outcomes the coordinator branches on. Each leg
   carries a fresh xid so the pair's dedup cache absorbs an injected
   duplicate; the counter only needs uniqueness within this service's
   cache window. *)

let xid_counter = ref 0

let fresh_xid () =
  incr xid_counter;
  !xid_counter

let txn_result reply =
  match reply.Message.status with Status.Ok -> Ok () | s -> Error s

let txn_leg t ~command ~txn dir body =
  txn_result
    (Amoeba_rpc.Transport.trans ?link:t.link t.transport ~model:t.model
       (Message.request ~port:t.service ~command ~cap:dir ~arg0:txn ~xid:(fresh_xid ()) ~body ()))

let txn_prepare t ~txn dir name op =
  txn_leg t ~command:Dir_proto.cmd_txn_prepare ~txn dir (Dir_proto.encode_txn_intent op name)

let txn_commit t ~txn dir name op =
  txn_leg t ~command:Dir_proto.cmd_txn_commit ~txn dir (Dir_proto.encode_txn_intent op name)

let txn_abort t ~txn =
  txn_result
    (Amoeba_rpc.Transport.trans ?link:t.link t.transport ~model:t.model
       (Message.request ~port:t.service ~command:Dir_proto.cmd_txn_abort ~arg0:txn
          ~xid:(fresh_xid ()) ()))

let components path = List.filter (fun c -> c <> "") (String.split_on_char '/' path)

let resolve t dir path =
  cap_of
    (checked t
       (Message.request ~port:t.service ~command:Dir_proto.cmd_resolve ~cap:dir
          ~body:(body_name path) ()))

let resolve_stepwise t dir path = List.fold_left (lookup t) dir (components path)

let mkdir_path t dir path =
  let step parent name =
    match lookup t parent name with
    | found -> found
    | exception Status.Error Status.Not_found ->
      let fresh = make_dir t in
      enter t parent name fresh;
      fresh
  in
  List.fold_left step dir (components path)
