module Cap = Amoeba_cap.Capability

(* The coordinator's write-ahead log. Records are kept ENCODED — every
   append runs the wire codec and recovery decodes the bytes back — so
   the durability story is honest: what survives a coordinator crash is
   exactly what the codec can round-trip, and the fuzz tests hammer that
   codec directly. *)

type action =
  | Bullet_create of Cap.t
  | Bullet_delete of Cap.t
  | Dir_intent of { dir : Cap.t; name : string; op : Amoeba_dir.Dir_server.intent_op }

type record =
  | Begin of int
  | Prepared of int * action
  | Commit of int
  | Done of int

(* ---- wire codec ---- *)

let add_u32 buf v =
  for i = 3 downto 0 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let add_cap buf cap = Buffer.add_bytes buf (Cap.to_bytes cap)

let encode_action buf = function
  | Bullet_create cap ->
    Buffer.add_char buf '\000';
    add_cap buf cap
  | Bullet_delete cap ->
    Buffer.add_char buf '\001';
    add_cap buf cap
  | Dir_intent { dir; name; op } ->
    Buffer.add_char buf '\002';
    add_cap buf dir;
    (match op with
    | Amoeba_dir.Dir_server.Txn_enter cap ->
      Buffer.add_char buf '\000';
      add_cap buf cap
    | Amoeba_dir.Dir_server.Txn_replace cap ->
      Buffer.add_char buf '\001';
      add_cap buf cap
    | Amoeba_dir.Dir_server.Txn_remove -> Buffer.add_char buf '\002');
    Buffer.add_char buf (Char.chr ((String.length name lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (String.length name land 0xff));
    Buffer.add_string buf name

type reader = { data : bytes; mutable pos : int }

exception Truncated

let need r n = if r.pos + n > Bytes.length r.data then raise Truncated

let read_u8 r =
  need r 1;
  let v = Char.code (Bytes.get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

let read_u32 r =
  need r 4;
  let v = ref 0 in
  for _ = 1 to 4 do
    v := (!v lsl 8) lor Char.code (Bytes.get r.data r.pos);
    r.pos <- r.pos + 1
  done;
  !v

let read_cap r =
  need r Cap.wire_size;
  let cap = Cap.read r.data r.pos in
  r.pos <- r.pos + Cap.wire_size;
  cap

let decode_action r =
  match read_u8 r with
  | 0 -> Ok (Bullet_create (read_cap r))
  | 1 -> Ok (Bullet_delete (read_cap r))
  | 2 ->
    let dir = read_cap r in
    let op =
      match read_u8 r with
      | 0 -> Ok (Amoeba_dir.Dir_server.Txn_enter (read_cap r))
      | 1 -> Ok (Amoeba_dir.Dir_server.Txn_replace (read_cap r))
      | 2 -> Ok Amoeba_dir.Dir_server.Txn_remove
      | n -> Error (Printf.sprintf "wal: unknown intent op tag %d" n)
    in
    Result.bind op (fun op ->
        (* explicit sequencing: argument order of [lor] is unspecified *)
        let hi = read_u8 r in
        let lo = read_u8 r in
        let len = (hi lsl 8) lor lo in
        need r len;
        let name = Bytes.sub_string r.data r.pos len in
        r.pos <- r.pos + len;
        Ok (Dir_intent { dir; name; op }))
  | n -> Error (Printf.sprintf "wal: unknown action tag %d" n)

let encode_record record =
  let buf = Buffer.create 32 in
  (match record with
  | Begin txn ->
    Buffer.add_char buf '\000';
    add_u32 buf txn
  | Prepared (txn, action) ->
    Buffer.add_char buf '\001';
    add_u32 buf txn;
    encode_action buf action
  | Commit txn ->
    Buffer.add_char buf '\002';
    add_u32 buf txn
  | Done txn ->
    Buffer.add_char buf '\003';
    add_u32 buf txn);
  Buffer.to_bytes buf

let decode_record data =
  let r = { data; pos = 0 } in
  let finish record = if r.pos = Bytes.length data then Ok record else Error "wal: trailing bytes" in
  match
    match read_u8 r with
    | 0 -> Ok (Begin (read_u32 r))
    | 1 ->
      let txn = read_u32 r in
      Result.map (fun action -> Prepared (txn, action)) (decode_action r)
    | 2 -> Ok (Commit (read_u32 r))
    | 3 -> Ok (Done (read_u32 r))
    | n -> Error (Printf.sprintf "wal: unknown record tag %d" n)
  with
  | Ok record -> finish record
  | Error _ as e -> e
  | exception Truncated -> Error "wal: truncated record"

(* ---- the log ---- *)

type t = { mutable log : bytes list (* encoded records, oldest first, reversed *) }

let create () = { log = [] }

let append t record = t.log <- encode_record record :: t.log

let length t = List.length t.log

let records t =
  List.fold_left
    (fun acc data -> Result.bind acc (fun rs -> Result.map (fun r -> r :: rs) (decode_record data)))
    (Ok []) (List.rev t.log)
  |> Result.map List.rev
