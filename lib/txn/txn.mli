(** Atomic multi-object operations: a two-phase commit coordinator over
    Bullet servers and replicated directory pairs.

    The paper's servers are deliberately single-object ("the Bullet
    server does not provide atomic update across files"); this module
    supplies the missing piece for the three multi-object operations the
    naming layer actually needs — create-and-bind, rename across
    directories, and replace-with-delete — without touching the
    single-object fast paths.

    The protocol is classic presumed-abort 2PC with a durable
    coordinator log ({!Wal}):

    - {b prepare}: each participant validates its action, makes it
      durable-but-invisible (a pending Bullet object excluded from the
      live set; a locked directory binding) and votes via its reply
      status. Any no-vote or timeout aborts the transaction.
    - {b decision}: the WAL [Commit] record is the commit point. Each
      decision leg carries the full action again, so a participant that
      lost its prepared state to a crash can still comply, and replays
      are answered [Ok] (idempotence), never applied twice.
    - {b recovery}: {!recover} re-reads the WAL; [Begin] without
      [Commit] aborts everywhere (unknown transactions answer [Ok] —
      the presumed-abort rule), [Commit] without [Done] re-sends the
      decisions. Cap-form Bullet aborts double as the orphan GC for
      servers that lost their pending tables.

    Crash edges are injected through {!Amoeba_fault.Injector.txn_point}:
    the coordinator announces each protocol position and an armed
    [txn_crash] directive fires the experiment's handler, which raises
    {!Crashed} to unwind the run exactly where a real coordinator would
    die. The WAL survives; the experiment then drives {!recover}. *)

exception Crashed of Amoeba_fault.Plan.txn_edge
(** Raised by experiment crash handlers out of
    {!Amoeba_fault.Injector.txn_point}; never raised by this module
    itself. *)

type outcome = Committed | Aborted

val outcome_name : outcome -> string

type t

val create :
  ?injector:Amoeba_fault.Injector.t ->
  ?tracer:Amoeba_trace.Trace.ctx ->
  ?metrics:Amoeba_metrics.Metrics.t ->
  bullets:Bullet_core.Client.t list ->
  dirs:Amoeba_dir.Dir_client.t list ->
  unit ->
  t
(** A coordinator over the given participant clients (decision legs are
    routed by capability port). [injector] wires the crash points;
    [metrics] registers [txn.prepared] / [txn.committed] / [txn.aborted]
    counters and the [txn.in_doubt] gauge into the given registry — the
    TXN experiment mounts them on the Bullet server's registry so
    STD_STATUS and [bullet_top] surface them. *)

val wal : t -> Wal.t

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [txns], [prepares], [commits], [aborts],
    [unresolved_commits] / [unresolved_aborts] (decision or abort legs
    timed out; {!recover} will finish the job), [recovered_commits] /
    [recovered_aborts]. *)

val in_doubt_count : t -> int
(** Transactions begun but not yet resolved, read off the WAL. *)

(** {1 Scenarios} *)

val create_and_bind :
  t ->
  bullet:Bullet_core.Client.t ->
  dir:Amoeba_dir.Dir_client.t ->
  dir_cap:Amoeba_cap.Capability.t ->
  name:string ->
  bytes ->
  outcome * Amoeba_cap.Capability.t option
(** Atomically create a Bullet file and bind it: after commit the name
    resolves to the new file; after abort the file does not exist and
    the name is unbound — never a bound name without a file or an
    unnamed live file. Returns the new capability on commit. *)

val rename :
  t ->
  from:Amoeba_dir.Dir_client.t * Amoeba_cap.Capability.t * string ->
  into:Amoeba_dir.Dir_client.t * Amoeba_cap.Capability.t * string ->
  outcome
(** Atomically move a binding between directories — possibly on two
    different directory pairs: remove from one, enter in the other,
    both or neither. *)

val replace_with_delete :
  t ->
  bullet:Bullet_core.Client.t ->
  dir:Amoeba_dir.Dir_client.t ->
  dir_cap:Amoeba_cap.Capability.t ->
  name:string ->
  bytes ->
  outcome * Amoeba_cap.Capability.t option
(** Atomically install new contents under a name and delete the
    displaced file: create the new Bullet file, condemn the old one,
    replace the binding — all or nothing. (Older entries of the name's
    version stack keep their capabilities; it is the displaced {e file}
    that dies.) *)

(** {1 Recovery} *)

type recovery = { resolved_commits : int; resolved_aborts : int }

val recover : t -> recovery
(** Resolve every in-doubt transaction in the WAL; idempotent (a second
    call finds nothing to do once all legs answer). *)
