module Cap = Amoeba_cap.Capability
module Port = Amoeba_cap.Port
module Status = Amoeba_rpc.Status
module Plan = Amoeba_fault.Plan
module Counter = Amoeba_metrics.Metrics.Counter

exception Crashed of Plan.txn_edge

type outcome = Committed | Aborted

let outcome_name = function Committed -> "committed" | Aborted -> "aborted"

type t = {
  wal : Wal.t;
  bullets : Bullet_core.Client.t list;
  dirs : Amoeba_dir.Dir_client.t list;
  injector : Amoeba_fault.Injector.t option;
  tracer : Amoeba_trace.Trace.ctx option;
  stats : Amoeba_sim.Stats.t;
  prepared : Counter.t;
  committed : Counter.t;
  aborted : Counter.t;
  mutable next_txn : int;
}

(* In-doubt is not a separate cell that could drift: it is read off the
   WAL — transactions begun but not yet resolved ([Done]). *)
let in_doubt_count t =
  match Wal.records t.wal with
  | Error _ -> 0
  | Ok records ->
    let begun = Hashtbl.create 8 in
    let resolved = Hashtbl.create 8 in
    List.iter
      (function
        | Wal.Begin txn -> Hashtbl.replace begun txn ()
        | Wal.Done txn -> Hashtbl.replace resolved txn ()
        | Wal.Prepared _ | Wal.Commit _ -> ())
      records;
    Hashtbl.fold (fun txn () acc -> if Hashtbl.mem resolved txn then acc else acc + 1) begun 0

let create ?injector ?tracer ?metrics ~bullets ~dirs () =
  let t =
    {
      wal = Wal.create ();
      bullets;
      dirs;
      injector;
      tracer;
      stats = Amoeba_sim.Stats.create "txn";
      prepared = Counter.create ();
      committed = Counter.create ();
      aborted = Counter.create ();
      next_txn = 1;
    }
  in
  (match metrics with
  | None -> ()
  | Some registry ->
    Amoeba_metrics.Metrics.register_counter registry "txn.prepared" t.prepared;
    Amoeba_metrics.Metrics.register_counter registry "txn.committed" t.committed;
    Amoeba_metrics.Metrics.register_counter registry "txn.aborted" t.aborted;
    Amoeba_metrics.Metrics.gauge registry "txn.in_doubt" (fun () -> in_doubt_count t));
  t

let wal t = t.wal

let stats t = t.stats

let point t edge =
  match t.injector with None -> () | Some inj -> Amoeba_fault.Injector.txn_point inj edge

let traced t name f =
  match t.tracer with
  | None -> f ()
  | Some tr -> Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Client ~name f

let bullet_for t port =
  List.find_opt (fun c -> Port.equal (Bullet_core.Client.port c) port) t.bullets

let dir_for t port = List.find_opt (fun c -> Port.equal (Amoeba_dir.Dir_client.port c) port) t.dirs

let commit_action t ~txn = function
  | Wal.Bullet_create cap -> (
    match bullet_for t cap.Cap.port with
    | None -> Error Status.No_such_object
    | Some c -> Bullet_core.Client.txn_commit c ~txn ~kind:Bullet_core.Server.Txn_create cap)
  | Wal.Bullet_delete cap -> (
    match bullet_for t cap.Cap.port with
    | None -> Error Status.No_such_object
    | Some c -> Bullet_core.Client.txn_commit c ~txn ~kind:Bullet_core.Server.Txn_delete cap)
  | Wal.Dir_intent { dir; name; op } -> (
    match dir_for t dir.Cap.port with
    | None -> Error Status.No_such_object
    | Some c -> Amoeba_dir.Dir_client.txn_commit c ~txn dir name op)

let abort_action t ~txn = function
  | Wal.Bullet_create cap -> (
    match bullet_for t cap.Cap.port with
    | None -> Error Status.No_such_object
    | Some c -> Bullet_core.Client.txn_abort c ~txn ~kind:Bullet_core.Server.Txn_create cap)
  | Wal.Bullet_delete cap -> (
    match bullet_for t cap.Cap.port with
    | None -> Error Status.No_such_object
    | Some c -> Bullet_core.Client.txn_abort c ~txn ~kind:Bullet_core.Server.Txn_delete cap)
  | Wal.Dir_intent _ -> Ok () (* directories roll back by id, sent below *)

(* Roll back everywhere. Cap-form aborts for the logged Bullet actions
   work even against a rebooted server that lost its pending table; the
   by-id aborts to every registered participant cover prepares whose
   replies were lost before the coordinator could log them (presumed
   abort: unknown transactions answer Ok). *)
let abort_txn t txn actions =
  Amoeba_sim.Stats.incr t.stats "aborts";
  Counter.incr t.aborted;
  let ok = ref true in
  let note = function Ok () -> () | Error Status.Timeout -> ok := false | Error _ -> () in
  List.iter (fun a -> note (abort_action t ~txn a)) actions;
  List.iter (fun c -> note (Bullet_core.Client.txn_abort_all c ~txn)) t.bullets;
  List.iter (fun c -> note (Amoeba_dir.Dir_client.txn_abort c ~txn)) t.dirs;
  if !ok then Wal.append t.wal (Wal.Done txn)
  else Amoeba_sim.Stats.incr t.stats "unresolved_aborts";
  Aborted

(* Decide commit: the commit record is the decision point — once it is
   logged the transaction commits no matter what, recovery re-sending
   any decision a crash or lost message withheld. *)
let commit_txn t txn actions =
  Wal.append t.wal (Wal.Commit txn);
  Amoeba_sim.Stats.incr t.stats "commits";
  Counter.incr t.committed;
  point t Plan.Coord_after_commit_record;
  let ok = ref true in
  let first = ref true in
  List.iter
    (fun a ->
      if not !first then point t Plan.Coord_mid_decision;
      first := false;
      match commit_action t ~txn a with Ok () -> () | Error _ -> ok := false)
    actions;
  if !ok then Wal.append t.wal (Wal.Done txn)
  else Amoeba_sim.Stats.incr t.stats "unresolved_commits";
  Committed

let log_prepared t txn action =
  Counter.incr t.prepared;
  Amoeba_sim.Stats.incr t.stats "prepares";
  Wal.append t.wal (Wal.Prepared (txn, action))

let begin_txn t =
  let txn = t.next_txn in
  t.next_txn <- txn + 1;
  Amoeba_sim.Stats.incr t.stats "txns";
  Wal.append t.wal (Wal.Begin txn);
  txn

(* ---- scenarios ---- *)

let create_and_bind t ~bullet ~dir ~dir_cap ~name data =
  traced t "txn.create_and_bind" (fun () ->
      let txn = begin_txn t in
      point t Plan.Coord_before_prepare;
      match Bullet_core.Client.txn_prepare_create bullet ~txn data with
      | Error _ -> (abort_txn t txn [], None)
      | Ok cap -> (
        let a1 = Wal.Bullet_create cap in
        log_prepared t txn a1;
        let op = Amoeba_dir.Dir_server.Txn_enter cap in
        match Amoeba_dir.Dir_client.txn_prepare dir ~txn dir_cap name op with
        | Error _ -> (abort_txn t txn [ a1 ], None)
        | Ok () ->
          let a2 = Wal.Dir_intent { dir = dir_cap; name; op } in
          log_prepared t txn a2;
          point t Plan.Participant_after_prepare;
          point t Plan.Coord_after_prepare;
          (commit_txn t txn [ a1; a2 ], Some cap)))

let rename t ~from:(from_client, from_dir, from_name) ~into:(to_client, to_dir, to_name) =
  traced t "txn.rename" (fun () ->
      let target =
        match Amoeba_dir.Dir_client.lookup from_client from_dir from_name with
        | cap -> Some cap
        | exception Status.Error _ -> None
      in
      match target with
      | None -> Aborted
      | Some target -> (
        let txn = begin_txn t in
        point t Plan.Coord_before_prepare;
        match Amoeba_dir.Dir_client.txn_prepare from_client ~txn from_dir from_name
                Amoeba_dir.Dir_server.Txn_remove
        with
        | Error _ -> abort_txn t txn []
        | Ok () -> (
          let a1 =
            Wal.Dir_intent
              { dir = from_dir; name = from_name; op = Amoeba_dir.Dir_server.Txn_remove }
          in
          log_prepared t txn a1;
          let op = Amoeba_dir.Dir_server.Txn_enter target in
          match Amoeba_dir.Dir_client.txn_prepare to_client ~txn to_dir to_name op with
          | Error _ -> abort_txn t txn [ a1 ]
          | Ok () ->
            let a2 = Wal.Dir_intent { dir = to_dir; name = to_name; op } in
            log_prepared t txn a2;
            point t Plan.Participant_after_prepare;
            point t Plan.Coord_after_prepare;
            commit_txn t txn [ a1; a2 ])))

let replace_with_delete t ~bullet ~dir ~dir_cap ~name data =
  traced t "txn.replace_with_delete" (fun () ->
      let old =
        match Amoeba_dir.Dir_client.lookup dir dir_cap name with
        | cap -> Some cap
        | exception Status.Error _ -> None
      in
      match old with
      | None -> (Aborted, None)
      | Some old_cap -> (
        let txn = begin_txn t in
        point t Plan.Coord_before_prepare;
        match Bullet_core.Client.txn_prepare_create bullet ~txn data with
        | Error _ -> (abort_txn t txn [], None)
        | Ok fresh -> (
          let a1 = Wal.Bullet_create fresh in
          log_prepared t txn a1;
          match Bullet_core.Client.txn_prepare_delete bullet ~txn old_cap with
          | Error _ -> (abort_txn t txn [ a1 ], None)
          | Ok () -> (
            let a2 = Wal.Bullet_delete old_cap in
            log_prepared t txn a2;
            let op = Amoeba_dir.Dir_server.Txn_replace fresh in
            match Amoeba_dir.Dir_client.txn_prepare dir ~txn dir_cap name op with
            | Error _ -> (abort_txn t txn [ a1; a2 ], None)
            | Ok () ->
              let a3 = Wal.Dir_intent { dir = dir_cap; name; op } in
              log_prepared t txn a3;
              point t Plan.Participant_after_prepare;
              point t Plan.Coord_after_prepare;
              (commit_txn t txn [ a1; a2; a3 ], Some fresh)))))

(* ---- recovery ---- *)

type recovery = { resolved_commits : int; resolved_aborts : int }

let recover t =
  traced t "txn.recover" (fun () ->
      match Wal.records t.wal with
      | Error e -> failwith e (* a corrupt WAL is a bug, not a protocol state *)
      | Ok records ->
        let tbl = Hashtbl.create 8 in
        let order = ref [] in
        List.iter
          (function
            | Wal.Begin txn ->
              if not (Hashtbl.mem tbl txn) then begin
                Hashtbl.replace tbl txn (ref false, ref false, ref []);
                order := txn :: !order
              end
            | Wal.Prepared (txn, a) -> (
              match Hashtbl.find_opt tbl txn with
              | Some (_, _, ps) -> ps := a :: !ps
              | None -> ())
            | Wal.Commit txn -> (
              match Hashtbl.find_opt tbl txn with Some (c, _, _) -> c := true | None -> ())
            | Wal.Done txn -> (
              match Hashtbl.find_opt tbl txn with Some (_, d, _) -> d := true | None -> ()))
          records;
        let commits = ref 0 in
        let aborts = ref 0 in
        List.iter
          (fun txn ->
            let committed, done_, prepared = Hashtbl.find tbl txn in
            if not !done_ then begin
              let actions = List.rev !prepared in
              if !committed then begin
                (* commit record without Done: re-send every decision;
                   participants answer Ok to ones they already applied *)
                incr commits;
                Amoeba_sim.Stats.incr t.stats "recovered_commits";
                let ok = ref true in
                List.iter
                  (fun a ->
                    match commit_action t ~txn a with Ok () -> () | Error _ -> ok := false)
                  actions;
                if !ok then Wal.append t.wal (Wal.Done txn)
              end
              else begin
                (* begun without a commit record: presumed abort *)
                incr aborts;
                Amoeba_sim.Stats.incr t.stats "recovered_aborts";
                let (_ : outcome) = abort_txn t txn actions in
                ()
              end
            end)
          (List.rev !order);
        { resolved_commits = !commits; resolved_aborts = !aborts })
