(** The coordinator's write-ahead log.

    Records are kept {e encoded}: every {!append} runs the wire codec
    and {!records} decodes the bytes back, so what survives a simulated
    coordinator crash is exactly what the codec can round-trip — the
    fuzz tests hammer {!encode_record}/{!decode_record} directly.

    The presumed-abort discipline needs only four record kinds:
    [Begin txn] brackets the transaction, one [Prepared] per successful
    prepare names the participant action (with enough capability
    material to re-send or roll back the decision to an amnesiac
    participant), [Commit] is the decision point, and [Done] marks full
    resolution. Recovery reads: [Begin] without [Commit] → abort
    everywhere; [Commit] without [Done] → re-send commits (idempotent);
    [Done] → nothing to do. *)

type action =
  | Bullet_create of Amoeba_cap.Capability.t
      (** a prepared Bullet object, pending until the decision *)
  | Bullet_delete of Amoeba_cap.Capability.t  (** a condemned Bullet object *)
  | Dir_intent of {
      dir : Amoeba_cap.Capability.t;
      name : string;
      op : Amoeba_dir.Dir_server.intent_op;
    }  (** a locked directory binding *)

type record = Begin of int | Prepared of int * action | Commit of int | Done of int

val encode_record : record -> bytes

val decode_record : bytes -> (record, string) result
(** Inverse of {!encode_record}; [Error] on truncation, unknown tags or
    trailing bytes. *)

type t

val create : unit -> t

val append : t -> record -> unit
(** Encode and retain; the in-memory byte list models the durable log
    (it survives the simulated coordinator crash, which unwinds only the
    coordinator's control flow). *)

val length : t -> int

val records : t -> (record list, string) result
(** Decode the whole log, oldest first. *)
