(** amoeba-vet: whole-program analyses over the compiler's typed trees.

    The Parsetree lint ([Lint]) is pass one; these passes read the
    [.cmt] artifacts dune leaves next to every compiled module (any dev
    build emits them; [dune build @check] builds them without linking)
    and see resolved paths across compilation units:

    - [Proto] — protocol conformance: [vet-proto-duplicate-cmd],
      [vet-proto-unhandled-cmd], [vet-proto-orphan-codec],
      [vet-proto-duplicate-metric].
    - [Clock] — interprocedural clock discipline:
      [vet-clock-free-work].
    - [Taint] — persisted-bytes taint: [vet-taint-persist].

    All three over-approximate on the call graph of top-level bindings;
    doc/ARCHITECTURE.md "Static analysis" documents the sound/unsound
    edges. Suppression uses the lint's
    [(* lint: allow <rule-id> <justification> *)] grammar; the taint
    pass honours a marker at either the sink or the source site. *)

type diagnostic = Lint.diagnostic = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

type pass = Proto | Clock | Taint

val pass_name : pass -> string
val pass_of_name : string -> pass option

val rules : (string * string) list
(** Every vet rule id with a one-line description (the lint's rules are
    in [Lint.rules]). *)

type inventory = {
  inv_cmds : (string * string * int) list;  (** unit, cmd name, wire value *)
  inv_codecs : (string * string) list;  (** unit, codec name *)
  inv_spans : (string * string) list;  (** unit, literal trace span/event name *)
  inv_hooks : (string * string) list;  (** unit, fault-plan hook label *)
  inv_metrics : (string * string) list;
      (** unit, literal metric or stats-source prefix name registered with
          a {!Amoeba_metrics.Metrics} registry *)
}

type report = { diagnostics : diagnostic list; inventory : inventory }

val analyze :
  read_source:(string -> string option) ->
  passes:pass list ->
  string list ->
  (report, string) result
(** [analyze ~read_source ~passes cmt_paths] loads every [.cmt], runs
    the selected passes, and filters diagnostics through the suppression
    markers found by [read_source] (which maps a cmt-recorded source
    path to its text, or [None] when unavailable — suppressions are then
    simply not honoured for that file). Diagnostics are unordered; sort
    with [order_diagnostics]. [Error] reports unreadable cmt files. *)

val order_diagnostics : diagnostic list -> diagnostic list
(** Stable order: file, line, rule, message. *)

val to_json : passes:string list -> diagnostics:diagnostic list -> inventory -> string
(** Byte-stable JSON report (sorted arrays, fixed key order, trailing
    newline) so CI can diff double runs byte-for-byte. *)
