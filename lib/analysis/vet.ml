(* amoeba-vet: whole-program analyses over the compiler's typed trees.

   The Parsetree lint (Lint) is pass one and stays purely syntactic;
   the passes here need resolved paths and the cross-unit view, so they
   read the [.cmt] artifacts dune leaves next to every compiled module
   (any dev build emits them; `dune build @check` builds them without
   linking). Three passes:

   - proto  : protocol conformance — every [cmd_*] constant must be
              matched by a serve/dispatch arm somewhere, no two cmds in
              a module may share a value, and every [encode_*] needs a
              [decode_*] somewhere in the scanned units (cross-file,
              unlike the same-file [wire-symmetry] lint rule).
   - clock  : interprocedural effect analysis — a function that reads
              the virtual clock and touches device/queue state, yet
              never (even transitively) charges simulated time, is
              "free work" that silently inflates throughput numbers.
   - taint  : persisted-bytes taint — a checkpoint/persist/replica-dump
              sink must not reach (through any call chain) a
              non-canonical byte source: float formatting, hash-order
              iteration, physical equality, Marshal, unstable hashes.

   All three are over-approximations on the call graph of top-level
   bindings; doc/ARCHITECTURE.md "Static analysis" spells out the
   sound/unsound edges. Suppressions use the same
   [(* lint: allow <rule-id> <justification> *)] grammar as the lint;
   the taint pass additionally honours a marker at the *source* site so
   one justified canonicalisation (e.g. Amoeba_sim.Tbl's sorted
   wrappers) silences every sink that reaches it. *)

type diagnostic = Lint.diagnostic = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

type pass = Proto | Clock | Taint

let pass_name = function Proto -> "proto" | Clock -> "clock" | Taint -> "taint"

let pass_of_name = function
  | "proto" -> Some Proto
  | "clock" -> Some Clock
  | "taint" -> Some Taint
  | _ -> None

let rules =
  [
    ("vet-proto-duplicate-cmd", "two cmd_* constants in one module share the same wire value");
    ( "vet-proto-unhandled-cmd",
      "a cmd_* constant is never referenced from any serve/dispatch arm; requests with that id \
       would be unanswerable" );
    ( "vet-proto-orphan-codec",
      "an encode_*/decode_* has no counterpart anywhere in the scanned units (cross-file, unlike \
       wire-symmetry)" );
    ( "vet-proto-duplicate-metric",
      "two metric instruments in one module are registered under the same literal name; the \
       second registration raises Duplicate_metric at runtime" );
    ( "vet-clock-free-work",
      "reads the virtual clock and touches device/queue state but never charges simulated time \
       (Clock.advance), even transitively" );
    ( "vet-taint-persist",
      "a checkpoint/persist/replica-dump sink can reach a non-canonical byte source (float \
       formatting, hash-order iteration, physical equality, Marshal)" );
  ]

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* ---- normalized module paths ----

   Dune's wrapped libraries mangle module names ("Amoeba_sim__Clock")
   while references through the alias module typecheck as
   "Amoeba_sim.Clock"; splitting every component on "__" folds both
   spellings onto one dotted path. "Stdlib" and dune's "Dune__exe"
   executable prefix carry no information and are dropped. *)

let split_mangled name =
  let parts = ref [] and buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  if Buffer.length buf > 0 then parts := Buffer.contents buf :: !parts;
  List.rev !parts

let normalize components =
  let flat = List.concat_map split_mangled components in
  let flat = match flat with "Stdlib" :: (_ :: _ as rest) -> rest | l -> l in
  match flat with "Dune" :: "exe" :: (_ :: _ as rest) -> rest | l -> l

let rec path_components (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_components p @ [ s ]
  | Path.Papply (a, _) -> path_components a
  | Path.Pextra_ty (p, _) -> path_components p

(* ---- per-unit facts ---- *)

type fn_info = {
  fn_name : string; (* dotted within the unit: "dispatch", "Sub.helper" *)
  fn_line : int;
  mutable fn_calls : string list list; (* normalized components of every value ref *)
  mutable fn_advances : bool;
  mutable fn_reads : bool;
  mutable fn_device : bool;
  mutable fn_sources : (string * int) list; (* taint source: description, line *)
}

type unit_info = {
  u_name : string; (* normalized dotted module path, e.g. "Bullet_core.Proto" *)
  u_file : string; (* source path as recorded in the cmt *)
  u_lib : bool;
  mutable u_cmds : (string * int * int) list; (* name, wire value, line *)
  mutable u_codecs : (string * int) list; (* name, line *)
  mutable u_cmd_refs : (string * string list * int) list; (* enclosing fn, ref components, line *)
  mutable u_fns : fn_info list;
  mutable u_spans : string list; (* trace span/event literal names *)
  mutable u_hooks : string list; (* fault-plan hook labels, on_-prefixed *)
  mutable u_metric_regs : (string * int) list; (* literal metric/prefix name, line *)
}

let scan_unit ~file ~modname (str : Typedtree.structure) =
  let u =
    {
      u_name = String.concat "." (normalize [ modname ]);
      u_file = file;
      (* test/fixtures holds deliberately-broken lib-shaped modules the
         fixture suite feeds back through these passes, so it is held to
         the lib rules too *)
      u_lib = Lint.under "lib" file || Lint.under "fixtures" file;
      u_cmds = [];
      u_codecs = [];
      u_cmd_refs = [];
      u_fns = [];
      u_spans = [];
      u_hooks = [];
      u_metric_regs = [];
    }
  in
  let new_fn name line =
    match List.find_opt (fun f -> String.equal f.fn_name name) u.u_fns with
    | Some f -> f
    | None ->
      let f =
        {
          fn_name = name;
          fn_line = line;
          fn_calls = [];
          fn_advances = false;
          fn_reads = false;
          fn_device = false;
          fn_sources = [];
        }
      in
      u.u_fns <- f :: u.u_fns;
      f
  in
  let note_ref fn comps line =
    let norm = normalize comps in
    fn.fn_calls <- norm :: fn.fn_calls;
    match List.rev norm with
    | [] -> ()
    | last :: rest_rev ->
      let prev = match rest_rev with m :: _ -> Some m | [] -> None in
      if starts_with "cmd_" last then u.u_cmd_refs <- (fn.fn_name, norm, line) :: u.u_cmd_refs;
      (match (prev, last) with
      | Some "Clock", ("advance" | "advance_to" | "parallel" | "unobserved") ->
        fn.fn_advances <- true
      | Some "Clock", ("now" | "elapsed") -> fn.fn_reads <- true
      | Some "Block_device", ("read" | "write" | "copy_from")
      | Some "Mirror", ("read" | "write")
      | Some "Worm_device", ("read" | "write" | "append")
      | Some "Event_queue", "push" ->
        fn.fn_device <- true
      | Some "Hashtbl", (("iter" | "fold") as f) ->
        fn.fn_sources <- ("Hashtbl." ^ f ^ " (hash-order iteration)", line) :: fn.fn_sources
      | Some "Hashtbl", (("hash" | "seeded_hash" | "hash_param") as f) ->
        fn.fn_sources <- ("Hashtbl." ^ f ^ " (unstable hash)", line) :: fn.fn_sources
      | Some "Marshal", _ ->
        fn.fn_sources <- ("Marshal (unstable byte format)", line) :: fn.fn_sources
      | Some "Float", "to_string" ->
        fn.fn_sources <- ("Float.to_string (float formatting)", line) :: fn.fn_sources
      | _, "string_of_float" ->
        fn.fn_sources <- ("string_of_float (float formatting)", line) :: fn.fn_sources
      | _, (("==" | "!=") as op) ->
        fn.fn_sources <- ("(" ^ op ^ ") (physical equality)", line) :: fn.fn_sources
      | _ -> ())
  in
  let expr_iter fn =
    let open Tast_iterator in
    let expr sub (e : Typedtree.expression) =
      (match e.exp_desc with
      | Typedtree.Texp_ident (p, _, _) -> note_ref fn (path_components p) (line_of e.exp_loc)
      | Typedtree.Texp_construct (_, cd, _) -> (
        match Types.get_desc cd.Types.cstr_res with
        | Types.Tconstr (p, _, _)
          when String.equal cd.Types.cstr_name "Float"
               && List.exists (String.equal "CamlinternalFormatBasics") (path_components p) ->
          fn.fn_sources <-
            ("%f/%g/%e conversion in a format literal (float formatting)", line_of e.exp_loc)
            :: fn.fn_sources
        | _ -> ())
      | Typedtree.Texp_apply (f, args) -> (
        match f.exp_desc with
        | Typedtree.Texp_ident (p, _, _) -> (
          let comps = normalize (path_components p) in
          match List.rev comps with
          | last :: m :: _ when String.equal m "Trace" ->
            if
              List.exists (String.equal last) [ "begin_root"; "begin_span"; "event"; "in_span" ]
            then
              List.iter
                (fun (lbl, a) ->
                  match (lbl, a) with
                  | Asttypes.Labelled "name", Some (arg : Typedtree.expression) -> (
                    match arg.exp_desc with
                    | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
                      u.u_spans <- s :: u.u_spans
                    | _ -> ())
                  | _ -> ())
                args
          | last :: m :: _ when String.equal m "Injector" && String.equal last "attach" ->
            List.iter
              (fun (lbl, a) ->
                match (lbl, a) with
                | Asttypes.Labelled l, Some _ when starts_with "on_" l -> u.u_hooks <- l :: u.u_hooks
                | _ -> ())
              args
          (* metric registrations by literal name; [Stats.counter]/[Stats.hist]
             are lookups, not registrations, so the Stats module is excluded *)
          | last :: rest
            when List.exists (String.equal last)
                   [ "counter"; "gauge"; "hist"; "register_counter"; "register_hist" ]
                 && (match rest with "Stats" :: _ -> false | _ -> true) ->
            let rec first_literal = function
              | [] -> ()
              | (Asttypes.Nolabel, Some (arg : Typedtree.expression)) :: more -> (
                match arg.exp_desc with
                | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
                  u.u_metric_regs <- (s, line_of arg.exp_loc) :: u.u_metric_regs
                | _ -> first_literal more)
              | _ :: more -> first_literal more
            in
            first_literal args
          | "stats_source" :: _ ->
            List.iter
              (fun (lbl, a) ->
                match (lbl, a) with
                | Asttypes.Labelled "prefix", Some (arg : Typedtree.expression) -> (
                  match arg.exp_desc with
                  | Typedtree.Texp_constant (Asttypes.Const_string (s, _, _)) ->
                    u.u_metric_regs <- (s, line_of arg.exp_loc) :: u.u_metric_regs
                  | _ -> ())
                | _ -> ())
              args
          | _ -> ())
        | _ -> ())
      | _ -> ());
      default_iterator.expr sub e
    in
    { default_iterator with expr }
  in
  let scan_expr fn e =
    let it = expr_iter fn in
    it.Tast_iterator.expr it e
  in
  let rec mod_structure (m : Typedtree.module_expr) =
    match m.mod_desc with
    | Typedtree.Tmod_structure s -> Some s
    | Typedtree.Tmod_constraint (m, _, _, _) -> mod_structure m
    | _ -> None
  in
  let rec walk prefix (items : Typedtree.structure_item list) =
    List.iter
      (fun (it : Typedtree.structure_item) ->
        match it.str_desc with
        | Typedtree.Tstr_value (_, vbs) ->
          List.iter
            (fun (vb : Typedtree.value_binding) ->
              let ids = Typedtree.pat_bound_idents vb.vb_pat in
              let line = line_of vb.vb_loc in
              let base =
                match ids with id :: _ -> Ident.name id | [] -> "(pattern)"
              in
              (match (prefix, ids, vb.vb_expr.exp_desc) with
              | "", [ id ], Typedtree.Texp_constant (Asttypes.Const_int n)
                when starts_with "cmd_" (Ident.name id) ->
                u.u_cmds <- (Ident.name id, n, line) :: u.u_cmds
              | _ -> ());
              (match ids with
              | [ id ] when Option.is_some (Lint.codec_role (Ident.name id)) ->
                u.u_codecs <- (Ident.name id, line) :: u.u_codecs
              | _ -> ());
              scan_expr (new_fn (prefix ^ base) line) vb.vb_expr)
            vbs
        | Typedtree.Tstr_module mb -> (
          match mod_structure mb.mb_expr with
          | Some s ->
            let mname = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
            walk (prefix ^ mname ^ ".") s.str_items
          | None -> ())
        | Typedtree.Tstr_recmodule mbs ->
          List.iter
            (fun (mb : Typedtree.module_binding) ->
              match mod_structure mb.mb_expr with
              | Some s ->
                let mname = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
                walk (prefix ^ mname ^ ".") s.str_items
              | None -> ())
            mbs
        | Typedtree.Tstr_eval (e, _) -> scan_expr (new_fn (prefix ^ "(init)") (line_of it.str_loc)) e
        | _ -> ())
      items
  in
  walk "" str.str_items;
  u

(* ---- cmt loading ---- *)

let load_cmt path =
  match Cmt_format.read_cmt path with
  | exception exn -> Error (Printf.sprintf "%s: %s" path (Printexc.to_string exn))
  | cmt -> (
    match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
    | Cmt_format.Implementation str, Some file ->
      Ok (Some (scan_unit ~file ~modname:cmt.Cmt_format.cmt_modname str))
    | _ -> Ok None)

let load_units cmt_paths =
  let seen = Hashtbl.create 64 in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match load_cmt path with
      | Error e -> errors := e :: !errors
      | Ok None -> ()
      | Ok (Some u) ->
        if not (Hashtbl.mem seen u.u_name) then begin
          Hashtbl.replace seen u.u_name ();
          units := u :: !units
        end)
    (List.sort String.compare cmt_paths);
  match !errors with
  | [] -> Ok (List.sort (fun a b -> String.compare a.u_name b.u_name) !units)
  | errs -> Error (String.concat "\n" (List.rev errs))

(* ---- the global call graph ---- *)

(* A reference [M1.M2.f] resolves to a scanned function by trying every
   split point: unit "M1.M2" + fn "f", then unit "M1" + fn "M2.f"; a
   bare [f] resolves within the referencing unit. Unresolved refs are
   externals (Stdlib, other packages) and contribute no edges. *)

module SMap = Map.Make (String)

type graph = {
  fns : (unit_info * fn_info) SMap.t; (* key: "Unit.name/fn.name" *)
  edges : string list SMap.t; (* key -> sorted callee keys *)
}

let fn_key u f = u.u_name ^ "/" ^ f.fn_name

let build_graph units =
  let fns =
    List.fold_left
      (fun acc u ->
        List.fold_left (fun acc f -> SMap.add (fn_key u f) (u, f) acc) acc u.u_fns)
      SMap.empty units
  in
  let resolve ~unit comps =
    let joined = String.concat "." comps in
    match comps with
    | [] -> None
    | [ f ] -> if SMap.mem (unit.u_name ^ "/" ^ f) fns then Some (unit.u_name ^ "/" ^ f) else None
    | _ ->
      if SMap.mem (unit.u_name ^ "/" ^ joined) fns then Some (unit.u_name ^ "/" ^ joined)
      else
        let n = List.length comps in
        let rec try_split k =
          if k = 0 then None
          else
            let rec take i = function
              | x :: rest when i > 0 -> x :: take (i - 1) rest
              | _ -> []
            in
            let rec drop i = function
              | _ :: rest when i > 0 -> drop (i - 1) rest
              | l -> l
            in
            let key =
              String.concat "." (take k comps) ^ "/" ^ String.concat "." (drop k comps)
            in
            if SMap.mem key fns then Some key else try_split (k - 1)
        in
        try_split (n - 1)
  in
  let edges =
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc f ->
            let callees =
              List.filter_map (resolve ~unit:u) f.fn_calls
              |> List.sort_uniq String.compare
              |> List.filter (fun k -> not (String.equal k (fn_key u f)))
            in
            SMap.add (fn_key u f) callees acc)
          acc u.u_fns)
      SMap.empty units
  in
  { fns; edges }

let callees g key = match SMap.find_opt key g.edges with Some l -> l | None -> []

let reachable g roots =
  let visited = Hashtbl.create 64 in
  let rec go key =
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      List.iter go (callees g key)
    end
  in
  List.iter go roots;
  visited

(* ---- pass: protocol conformance ---- *)

let proto_pass units g =
  let diags = ref [] in
  let emit u line rule message = diags := { file = u.u_file; line; rule; message } :: !diags in
  (* duplicate wire values within one module *)
  List.iter
    (fun u ->
      if u.u_lib then
        let sorted =
          List.sort
            (fun (_, va, la) (_, vb, lb) ->
              let c = Int.compare va vb in
              if c <> 0 then c else Int.compare la lb)
            u.u_cmds
        in
        let rec scan = function
          | (na, va, _) :: ((nb, vb, lb) :: _ as rest) ->
            if va = vb then
              emit u lb "vet-proto-duplicate-cmd"
                (Printf.sprintf "%s = %d duplicates %s in this module" nb vb na);
            scan rest
          | _ -> []
        in
        ignore (scan sorted))
    units;
  (* the same literal metric name registered twice in one module would
     raise Duplicate_metric as soon as both sites run against one
     registry *)
  List.iter
    (fun u ->
      if u.u_lib then begin
        let sorted =
          List.sort
            (fun (na, la) (nb, lb) ->
              let c = String.compare na nb in
              if c <> 0 then c else Int.compare la lb)
            u.u_metric_regs
        in
        let rec scan = function
          | (na, la) :: (((nb, lb) :: _) as rest) ->
            if String.equal na nb then
              emit u lb "vet-proto-duplicate-metric"
                (Printf.sprintf
                   "metric %S is already registered at line %d in this module; a second \
                    registration raises Duplicate_metric"
                   na la);
            scan rest
          | _ -> ()
        in
        scan sorted
      end)
    units;
  (* every cmd must be referenced from some serve/dispatch arm *)
  let dispatch_roots =
    List.concat_map
      (fun u ->
        List.filter_map
          (fun f ->
            let base =
              match String.rindex_opt f.fn_name '.' with
              | Some i -> String.sub f.fn_name (i + 1) (String.length f.fn_name - i - 1)
              | None -> f.fn_name
            in
            if String.equal base "serve" || String.equal base "dispatch" then Some (fn_key u f)
            else None)
          u.u_fns)
      units
  in
  let dispatch_reach = reachable g dispatch_roots in
  let handled =
    (* (defining unit, cmd name) pairs referenced from dispatch-reachable code *)
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc (fn, comps, _) ->
            if Hashtbl.mem dispatch_reach (u.u_name ^ "/" ^ fn) then
              match List.rev comps with
              | name :: [] -> SMap.add (u.u_name ^ "/" ^ name) () acc
              | name :: prefix_rev ->
                SMap.add (String.concat "." (List.rev prefix_rev) ^ "/" ^ name) () acc
              | [] -> acc
            else acc)
          acc u.u_cmd_refs)
      SMap.empty units
  in
  List.iter
    (fun u ->
      if u.u_lib then
        List.iter
          (fun (name, value, line) ->
            if not (SMap.mem (u.u_name ^ "/" ^ name) handled) then
              emit u line "vet-proto-unhandled-cmd"
                (Printf.sprintf
                   "%s (wire value %d) is never referenced from any serve/dispatch arm" name value))
          u.u_cmds)
    units;
  (* cross-file codec symmetry *)
  let roles =
    List.fold_left
      (fun acc u ->
        List.fold_left
          (fun acc (name, _) ->
            match Lint.codec_role name with
            | Some (`Encode, s) ->
              SMap.update s
                (fun p ->
                  let e, d = Option.value p ~default:(false, false) in
                  ignore e;
                  Some (true, d))
                acc
            | Some (`Decode, s) ->
              SMap.update s
                (fun p ->
                  let e, d = Option.value p ~default:(false, false) in
                  ignore d;
                  Some (e, true))
                acc
            | None -> acc)
          acc u.u_codecs)
      SMap.empty units
  in
  List.iter
    (fun u ->
      List.iter
        (fun (name, line) ->
          match Lint.codec_role name with
          | Some (role, s) ->
            let e, d = Option.value (SMap.find_opt s roles) ~default:(false, false) in
            let missing = match role with `Encode -> not d | `Decode -> not e in
            if missing then
              let expected =
                (match role with `Encode -> "decode" | `Decode -> "encode")
                ^ if String.equal s "" then "" else "_" ^ s
              in
              emit u line "vet-proto-orphan-codec"
                (Printf.sprintf "%s has no matching %s anywhere in the scanned units" name expected)
          | None -> ())
        u.u_codecs)
    units;
  !diags

(* ---- pass: clock discipline ---- *)

let clock_pass g =
  (* least fixpoint of (advances, reads, device) over the call graph *)
  let eff = Hashtbl.create 256 in
  SMap.iter
    (fun key (_, f) -> Hashtbl.replace eff key (f.fn_advances, f.fn_reads, f.fn_device))
    g.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    SMap.iter
      (fun key _ ->
        let a, r, d = Hashtbl.find eff key in
        let a', r', d' =
          List.fold_left
            (fun (a, r, d) c ->
              let ca, cr, cd = Hashtbl.find eff c in
              (a || ca, r || cr, d || cd))
            (a, r, d) (callees g key)
        in
        if a' <> a || r' <> r || d' <> d then begin
          Hashtbl.replace eff key (a', r', d');
          changed := true
        end)
      g.fns
  done;
  let free key =
    let a, r, d = Hashtbl.find eff key in
    r && d && not a
  in
  SMap.fold
    (fun key (u, f) acc ->
      if u.u_lib && free key && not (List.exists free (callees g key)) then
        {
          file = u.u_file;
          line = f.fn_line;
          rule = "vet-clock-free-work";
          message =
            Printf.sprintf
              "%s reads the virtual clock and touches device/queue state but never charges \
               simulated time (no Clock.advance on any path)"
              f.fn_name;
        }
        :: acc
      else acc)
    g.fns []

(* ---- pass: persisted-bytes taint ---- *)

let sink_name name =
  let base =
    match String.rindex_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  String.equal base "checkpoint" || String.equal base "repersist"
  || String.equal base "replica_dumps" || String.equal base "dump_replica"
  || starts_with "persist" base

let taint_pass ~allows_for units g =
  let source_allowed u (_, line) =
    Lint.suppressed (allows_for u.u_file)
      { file = u.u_file; line; rule = "vet-taint-persist"; message = "" }
  in
  let live_sources key =
    let u, f = SMap.find key g.fns in
    List.filter (fun s -> not (source_allowed u s)) f.fn_sources
    |> List.sort (fun (a, la) (b, lb) ->
           let c = Int.compare la lb in
           if c <> 0 then c else String.compare a b)
  in
  let find_witness sink_key =
    (* BFS with sorted neighbours: the first tainted function found is
       deterministic, and the parent chain is the shortest call path *)
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace parent sink_key sink_key;
    Queue.add sink_key q;
    let rec go () =
      match Queue.take_opt q with
      | None -> None
      | Some key -> (
        match live_sources key with
        | (desc, line) :: _ ->
          let rec chain k acc =
            let p = Hashtbl.find parent k in
            if String.equal p k then k :: acc else chain p (k :: acc)
          in
          Some (key, desc, line, chain key [])
        | [] ->
          List.iter
            (fun c ->
              if not (Hashtbl.mem parent c) then begin
                Hashtbl.replace parent c key;
                Queue.add c q
              end)
            (callees g key);
          go ())
    in
    go ()
  in
  List.concat_map
    (fun u ->
      if not u.u_lib then []
      else
        List.filter_map
          (fun f ->
            if not (sink_name f.fn_name) then None
            else
              match find_witness (fn_key u f) with
              | None -> None
              | Some (src_key, desc, src_line, chain) ->
                let src_u, _ = SMap.find src_key g.fns in
                Some
                  {
                    file = u.u_file;
                    line = f.fn_line;
                    rule = "vet-taint-persist";
                    message =
                      Printf.sprintf "%s persists bytes that can reach %s at %s:%d (call chain: %s)"
                        f.fn_name desc src_u.u_file src_line (String.concat " -> " chain);
                  })
          u.u_fns)
    units

(* ---- inventory + report ---- *)

type inventory = {
  inv_cmds : (string * string * int) list; (* unit, name, wire value *)
  inv_codecs : (string * string) list; (* unit, name *)
  inv_spans : (string * string) list; (* unit, literal span/event name *)
  inv_hooks : (string * string) list; (* unit, fault hook label *)
  inv_metrics : (string * string) list; (* unit, literal metric/prefix name *)
}

type report = { diagnostics : diagnostic list; inventory : inventory }

let inventory units =
  let sort2 l = List.sort_uniq (fun (a, b) (c, d) ->
      let x = String.compare a c in
      if x <> 0 then x else String.compare b d) l
  in
  {
    inv_cmds =
      List.concat_map (fun u -> List.map (fun (n, v, _) -> (u.u_name, n, v)) u.u_cmds) units
      |> List.sort_uniq (fun (a, b, v) (c, d, w) ->
             let x = String.compare a c in
             if x <> 0 then x
             else
               let x = String.compare b d in
               if x <> 0 then x else Int.compare v w);
    inv_codecs =
      sort2 (List.concat_map (fun u -> List.map (fun (n, _) -> (u.u_name, n)) u.u_codecs) units);
    inv_spans = sort2 (List.concat_map (fun u -> List.map (fun s -> (u.u_name, s)) u.u_spans) units);
    inv_hooks = sort2 (List.concat_map (fun u -> List.map (fun h -> (u.u_name, h)) u.u_hooks) units);
    inv_metrics =
      sort2
        (List.concat_map
           (fun u -> List.map (fun (n, _) -> (u.u_name, n)) u.u_metric_regs)
           units);
  }

let analyze ~read_source ~passes cmt_paths =
  match load_units cmt_paths with
  | Error e -> Error e
  | Ok units ->
    let g = build_graph units in
    let allow_cache = Hashtbl.create 16 in
    let allows_for file =
      match Hashtbl.find_opt allow_cache file with
      | Some a -> a
      | None ->
        let a =
          match read_source file with Some src -> Lint.allows_of_source src | None -> []
        in
        Hashtbl.replace allow_cache file a;
        a
    in
    let diags =
      List.concat_map
        (fun p ->
          match p with
          | Proto -> proto_pass units g
          | Clock -> clock_pass g
          | Taint -> taint_pass ~allows_for units g)
        passes
    in
    let diags = List.filter (fun d -> not (Lint.suppressed (allows_for d.file) d)) diags in
    Ok { diagnostics = diags; inventory = inventory units }

(* ---- stable JSON ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ~passes ~diagnostics inv =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n  \"tool\": \"amoeba-vet\",\n  \"version\": 1,\n  \"passes\": [";
  add (String.concat ", " (List.map (fun p -> "\"" ^ json_escape p ^ "\"") passes));
  add "],\n  \"diagnostics\": [";
  List.iteri
    (fun i (d : diagnostic) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "\n    {\"file\": \"%s\", \"line\": %d, \"rule\": \"%s\", \"message\": \"%s\"}"
           (json_escape d.file) d.line (json_escape d.rule) (json_escape d.message)))
    diagnostics;
  if diagnostics <> [] then add "\n  ";
  add "],\n  \"inventory\": {\n    \"cmds\": [";
  List.iteri
    (fun i (u, n, v) ->
      if i > 0 then add ",";
      add
        (Printf.sprintf "\n      {\"unit\": \"%s\", \"name\": \"%s\", \"value\": %d}" (json_escape u)
           (json_escape n) v))
    inv.inv_cmds;
  if inv.inv_cmds <> [] then add "\n    ";
  let pair_list field l close =
    add ("],\n    \"" ^ field ^ "\": [");
    List.iteri
      (fun i (u, n) ->
        if i > 0 then add ",";
        add
          (Printf.sprintf "\n      {\"unit\": \"%s\", \"name\": \"%s\"}" (json_escape u)
             (json_escape n)))
      l;
    if l <> [] then add "\n    ";
    if close then add "]\n  }\n}\n"
  in
  pair_list "codecs" inv.inv_codecs false;
  pair_list "spans" inv.inv_spans false;
  pair_list "hooks" inv.inv_hooks false;
  pair_list "metrics" inv.inv_metrics true;
  Buffer.contents b

let order_diagnostics diags =
  List.sort
    (fun (a : diagnostic) (b : diagnostic) ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c
        else
          let c = String.compare a.rule b.rule in
          if c <> 0 then c else String.compare a.message b.message)
    diags
