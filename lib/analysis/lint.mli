(** The determinism linter.

    A static-analysis pass (compiler-libs Parsetree traversal) over the
    repo's own sources that enforces the simulation's core invariant:
    same plan + same workload ⇒ same bytes. Rule ids and their
    rationale are documented in doc/ARCHITECTURE.md ("Determinism
    rules"); [bin/amoeba_lint] is the command-line driver and a dune
    rule runs it over [lib/] and [bin/] as part of [dune runtest].

    The OS rules ([no-wallclock], [no-os-entropy], [no-marshal]) apply
    everywhere: PR 7's typedtree audit proved the old blanket carrier
    exemption ([lib/rpc/tcp.ml] + [bin/]) was never exercised, so it was
    retired. Rules about [lib] hygiene ([no-unstable-hash],
    [no-hashtbl-iteration], [mli-coverage], [no-silent-catchall]) apply
    only to paths containing a [lib] segment. Individual lines are
    silenced with a [(* lint: allow <rule-id> <justification> *)]
    comment on the offending line or the line directly above it. *)

type diagnostic = { file : string; line : int; rule : string; message : string }

val to_string : diagnostic -> string
(** ["file:line rule-id message"]. *)

val rules : (string * string) list
(** Every rule id with a one-line description. *)

(** {2 Helpers shared with the typedtree passes ([Vet])} *)

val under : string -> string -> bool
(** [under dir path] is true when [path] contains [dir] as a whole
    segment ([under "lib" "lib/bullet/proto.ml"]). *)

val codec_role : string -> ([ `Encode | `Decode ] * string) option
(** Classify a binding name as a wire codec: [encode_stat] is
    [Some (`Encode, "stat")], [decode] is [Some (`Decode, "")]. *)

val allows_of_source : string -> (int * string) list
(** All [(* lint: allow <rule-id> ... *)] markers in a source text, as
    [(line, rule-id)] pairs where [line] is the 1-based line the marker
    sits on. *)

val suppressed : (int * string) list -> diagnostic -> bool
(** Whether a diagnostic is silenced by a marker on its own line or the
    line directly above. *)

val lint_source : path:string -> string -> diagnostic list
(** Lint one compilation unit given as a string. [path] decides which
    allowlists apply and is echoed in diagnostics; the source is parsed
    with the compiler's own parser, so a syntax error yields a single
    [parse-error] diagnostic. Filesystem-level rules ([mli-coverage])
    are not checked here. *)

val lint_file : string -> diagnostic list
(** Lint one [.ml] file from disk, including the [mli-coverage] check. *)

val lint_paths : string list -> diagnostic list
(** Lint every [.ml] file under the given files/directories
    (recursively, skipping [_build] and dot-directories), sorted by
    file, line and rule. *)
