(** Shared driver behind [bin/amoeba_vet] and its alias
    [bin/amoeba_lint]: argument parsing, [.cmt] discovery (directly
    under the given paths when running inside [_build/default], else
    under [_build/default/<path>]), pass selection, plain or [--json]
    output, and the [VET_SKIP] escape hatch. *)

val main : prog:string -> string array -> int
(** Run the CLI; returns the intended exit code (0 clean or skipped,
    1 diagnostics reported, 2 usage/environment error). *)
