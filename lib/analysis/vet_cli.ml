(* Shared command-line driver behind bin/amoeba_vet (and its alias
   bin/amoeba_lint). Composes the Parsetree lint (pass "lint") with the
   typedtree passes ("proto", "clock", "taint") from Vet, over the same
   path arguments the PR-2 linter took. *)

let usage prog =
  Printf.eprintf
    "usage: %s [--list-rules] [--passes lint,proto,clock,taint] [--json] [--out FILE] [path ...]\n\
    \       (default paths: lib bin; default passes: all; VET_SKIP=1 skips everything)\n"
    prog;
  2

let list_rules () =
  List.iter
    (fun (id, description) -> Printf.printf "%-24s %s\n" id description)
    (Lint.rules @ Vet.rules);
  0

(* ---- cmt discovery ----

   The compiled artifacts live in hidden .objs/.eobjs directories next
   to each dune stanza: under the given paths directly when we run
   inside _build/default (the dune rule does), or under
   _build/default/<path> when run from the repo root. *)

let rec cmts_under path =
  if Sys.file_exists path && Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name <> "_build")
    |> List.concat_map (fun name -> cmts_under (Filename.concat path name))
  else if Filename.check_suffix path ".cmt" then [ path ]
  else []

let discover_cmts paths =
  List.concat_map
    (fun p ->
      match cmts_under p with
      | [] -> cmts_under (Filename.concat (Filename.concat "_build" "default") p)
      | cmts -> cmts)
    paths

let read_source file =
  let try_read path =
    if Sys.file_exists path && not (Sys.is_directory path) then (
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic))))
    else None
  in
  match try_read file with
  | Some s -> Some s
  | None -> try_read (Filename.concat (Filename.concat "_build" "default") file)

(* ---- argument parsing ---- *)

type options = {
  mutable list_rules : bool;
  mutable passes : string list;
  mutable json : bool;
  mutable out : string option;
  mutable paths : string list;
  mutable bad : string option;
}

let all_passes = [ "lint"; "proto"; "clock"; "taint" ]

let parse_args argv =
  let o = { list_rules = false; passes = all_passes; json = false; out = None; paths = []; bad = None } in
  let rec go = function
    | [] -> ()
    | ("--help" | "-h") :: _ -> o.bad <- Some "help"
    | "--list-rules" :: rest ->
      o.list_rules <- true;
      go rest
    | "--json" :: rest ->
      o.json <- true;
      go rest
    | "--out" :: file :: rest ->
      o.out <- Some file;
      go rest
    | "--passes" :: spec :: rest ->
      let names = List.filter (fun s -> s <> "") (String.split_on_char ',' spec) in
      if names = [] then o.bad <- Some "--passes needs a comma-separated list"
      else begin
        List.iter
          (fun n ->
            if not (List.exists (String.equal n) all_passes) then
              o.bad <- Some (Printf.sprintf "unknown pass %S (have: %s)" n (String.concat ", " all_passes)))
          names;
        o.passes <- List.filter (fun p -> List.exists (String.equal p) names) all_passes;
        go rest
      end
    | [ "--out" ] -> o.bad <- Some "--out needs a file argument"
    | [ "--passes" ] -> o.bad <- Some "--passes needs an argument"
    | arg :: rest ->
      if String.length arg > 0 && arg.[0] = '-' then
        o.bad <- Some (Printf.sprintf "unknown option %S" arg)
      else begin
        o.paths <- o.paths @ [ arg ];
        go rest
      end
  in
  go (List.tl (Array.to_list argv));
  o

let main ~prog argv =
  match Sys.getenv_opt "VET_SKIP" with
  | Some v when v <> "" && v <> "0" ->
    Printf.eprintf "%s: skipped (VET_SKIP=%s)\n" prog v;
    0
  | _ -> (
    let o = parse_args argv in
    match o.bad with
    | Some "help" -> usage prog
    | Some msg ->
      Printf.eprintf "%s: %s\n" prog msg;
      usage prog
    | None ->
      if o.list_rules then list_rules ()
      else
        let paths = match o.paths with [] -> [ "lib"; "bin" ] | paths -> paths in
        let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
        (match missing with
        | p :: _ ->
          Printf.eprintf "%s: no such path %S\n" prog p;
          2
        | [] -> (
          let lint_diags =
            if List.exists (String.equal "lint") o.passes then Lint.lint_paths paths else []
          in
          let typed_passes = List.filter_map Vet.pass_of_name o.passes in
          let typed_result =
            if typed_passes = [] then
              Ok { Vet.diagnostics = []; inventory = { inv_cmds = []; inv_codecs = []; inv_spans = []; inv_hooks = []; inv_metrics = [] } }
            else
              match discover_cmts paths with
              | [] ->
                Error
                  (Printf.sprintf
                     "no .cmt files found under %s; run `dune build @check` first (or select \
                      --passes lint)"
                     (String.concat " " paths))
              | cmts -> Vet.analyze ~read_source ~passes:typed_passes cmts
          in
          match typed_result with
          | Error e ->
            Printf.eprintf "%s: %s\n" prog e;
            2
          | Ok report ->
            let diagnostics = Vet.order_diagnostics (lint_diags @ report.Vet.diagnostics) in
            let emit out =
              if o.json then
                output_string out
                  (Vet.to_json ~passes:o.passes ~diagnostics report.Vet.inventory)
              else
                List.iter (fun d -> output_string out (Lint.to_string d ^ "\n")) diagnostics
            in
            (match o.out with
            | Some file ->
              let oc = open_out_bin file in
              Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> emit oc)
            | None -> emit stdout);
            (match diagnostics with
            | [] -> 0
            | _ :: _ ->
              Printf.eprintf "%s: %d diagnostic(s)\n" prog (List.length diagnostics);
              1))))
