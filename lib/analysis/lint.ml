(* The determinism linter: a Parsetree pass (compiler-libs) over the
   repo's own sources. Every performance claim in EXPERIMENTS.md rests on
   "same plan + same workload => same bytes"; these rules turn that
   convention into a build failure. See doc/ARCHITECTURE.md, section
   "Static analysis", for the rationale behind each rule id. *)

type diagnostic = { file : string; line : int; rule : string; message : string }

let to_string d = Printf.sprintf "%s:%d %s %s" d.file d.line d.rule d.message

let rules =
  [
    ("no-wallclock", "host clock reads (Sys.time, Unix.gettimeofday); charge Amoeba_sim.Clock");
    ("no-os-entropy", "stdlib Random; seed an Amoeba_sim.Prng instead");
    ("no-marshal", "Marshal anywhere; its bytes are not a stable wire format");
    ( "no-unstable-hash",
      "Hashtbl.hash and first-class polymorphic compare/(=) in lib/; unstable across versions" );
    ( "no-hashtbl-iteration",
      "Hashtbl.iter/fold in a clock-coupled module; order is unspecified, use Amoeba_sim.Tbl" );
    ( "trace-no-wallclock",
      "any Unix call or Sys.time in lib/trace or lib/sim; trace dumps must be pure simulation" );
    ("mli-coverage", "every lib/**/*.ml must have a matching .mli");
    ("wire-symmetry", "every top-level encode_* needs a decode_* in the same file, and vice versa");
    ( "no-silent-catchall",
      "a guardless `| _ ->` arm in a serve/dispatch/decode_* command match that neither raises nor \
       returns an explicit error; unknown cmd ids must fail loudly" );
    ("parse-error", "the file does not parse; nothing else can be checked");
  ]

(* ---- path classification ---- *)

let segments path = List.filter (fun s -> s <> "" && s <> ".") (String.split_on_char '/' path)

let under dir path = List.exists (String.equal dir) (segments path)

(* PR 2 exempted the real-socket carrier (lib/rpc/tcp.ml + bin/) from the
   OS rules wholesale. The PR 7 typedtree audit showed the exemption was
   never exercised — no carrier file reads the wall clock, draws OS
   entropy or calls Marshal — so the blanket allowlist is retired. A
   future genuine need must use an inline, justified
   [(* lint: allow <rule> ... *)] instead of a path carve-out. *)

let in_lib path = under "lib" path

(* ---- suppression comments ----

   [(* lint: allow <rule-id> ... *)] on the offending line, or on the
   line directly above it, silences that rule for that line. Anything
   after the rule id is free-form justification. *)

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '-'

let allows_of_source source =
  let marker = "lint: allow" in
  let allows = ref [] in
  let scan_line lnum line =
    let rec find from =
      match
        if String.length line - from < String.length marker then None
        else
          let rec at i =
            if i = String.length marker then Some from
            else if line.[from + i] = marker.[i] then at (i + 1)
            else None
          in
          at 0
      with
      | Some hit ->
        let p = ref (hit + String.length marker) in
        while !p < String.length line && line.[!p] = ' ' do
          incr p
        done;
        let start = !p in
        while !p < String.length line && is_ident_char line.[!p] do
          incr p
        done;
        if !p > start then allows := (lnum + 1, String.sub line start (!p - start)) :: !allows;
        find !p
      | None -> if from + 1 < String.length line then find (from + 1)
    in
    find 0
  in
  List.iteri scan_line (String.split_on_char '\n' source);
  !allows

let suppressed allows d =
  List.exists (fun (line, rule) -> rule = d.rule && (line = d.line || line = d.line - 1)) allows

(* ---- the Parsetree pass ---- *)

let flatten lid =
  let rec go acc = function
    | Longident.Lident s -> s :: acc
    | Longident.Ldot (l, s) -> go (s :: acc) l
    | Longident.Lapply _ -> acc
  in
  go [] lid

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* Top-level [encode_*]/[decode_*] value bindings, recursing into nested
   module structures but not into expressions (a local helper is not
   part of the wire vocabulary). *)
let rec codec_bindings structure =
  let of_item item =
    match item.Parsetree.pstr_desc with
    | Parsetree.Pstr_value (_, bindings) ->
      List.filter_map
        (fun vb ->
          match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
          | Parsetree.Ppat_var { txt; loc } -> Some (txt, line_of loc)
          | _ -> None)
        bindings
    | Parsetree.Pstr_module { pmb_expr = { pmod_desc = Parsetree.Pmod_structure s; _ }; _ } ->
      codec_bindings s
    | Parsetree.Pstr_recmodule mbs ->
      List.concat_map
        (fun (mb : Parsetree.module_binding) ->
          match mb.pmb_expr.pmod_desc with
          | Parsetree.Pmod_structure s -> codec_bindings s
          | _ -> [])
        mbs
    | _ -> []
  in
  List.concat_map of_item structure

let codec_role name =
  let suffix prefix =
    if name = prefix then Some ""
    else
      let p = prefix ^ "_" in
      if String.length name > String.length p && String.sub name 0 (String.length p) = p then
        Some (String.sub name (String.length p) (String.length name - String.length p))
      else None
  in
  match suffix "encode" with
  | Some s -> Some (`Encode, s)
  | None -> ( match suffix "decode" with Some s -> Some (`Decode, s) | None -> None)

(* ---- no-silent-catchall ----

   Inside a [serve]/[dispatch]/[decode_*] binding, a guardless [| _ ->]
   arm of a command-shaped match (one that matches integer constants, or
   whose scrutinee mentions a cmd/command value) must fail loudly —
   raise, or produce an explicit error value — so an unknown cmd id can
   never be silently swallowed. *)

let starts_with prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let dispatch_like name = name = "serve" || name = "dispatch" || starts_with "decode_" name

let rec pattern_has_int (p : Parsetree.pattern) =
  match p.Parsetree.ppat_desc with
  | Parsetree.Ppat_constant (Parsetree.Pconst_integer _) -> true
  | Parsetree.Ppat_or (a, b) -> pattern_has_int a || pattern_has_int b
  | Parsetree.Ppat_alias (a, _) | Parsetree.Ppat_constraint (a, _) -> pattern_has_int a
  | Parsetree.Ppat_tuple ps -> List.exists pattern_has_int ps
  | Parsetree.Ppat_construct (_, Some (_, a)) -> pattern_has_int a
  | _ -> false

let expr_mentions pred expr =
  let found = ref false in
  let open Ast_iterator in
  let expr_hook sub (e : Parsetree.expression) =
    if pred e then found := true;
    default_iterator.expr sub e
  in
  let it = { default_iterator with expr = expr_hook } in
  it.expr it expr;
  !found

let mentions_cmd_ident e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_ident { txt; _ } ->
    List.exists
      (fun s ->
        let s = String.lowercase_ascii s in
        starts_with "cmd" s || s = "command" || s = "op" || s = "opcode")
      (flatten txt)
  | _ -> false

let arm_fails_loudly rhs =
  expr_mentions
    (fun e ->
      match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_assert _ -> true
      | Parsetree.Pexp_construct ({ txt; _ }, _) ->
        List.exists (fun s -> s = "Error" || s = "None") (flatten txt)
      | Parsetree.Pexp_ident { txt; _ } ->
        List.exists
          (fun s ->
            let l = String.lowercase_ascii s in
            starts_with "fail" l || starts_with "error" l || starts_with "invalid_arg" l
            || starts_with "raise" l || s = "Status")
          (flatten txt)
      | _ -> false)
    rhs

let catchall_diags ~path structure =
  let diags = ref [] in
  let check_cases ~dispatchy cases =
    let dispatchy =
      dispatchy
      || List.exists (fun (c : Parsetree.case) -> pattern_has_int c.Parsetree.pc_lhs) cases
    in
    if dispatchy then
      List.iter
        (fun (c : Parsetree.case) ->
          match (c.Parsetree.pc_lhs.Parsetree.ppat_desc, c.Parsetree.pc_guard) with
          | Parsetree.Ppat_any, None ->
            if not (arm_fails_loudly c.Parsetree.pc_rhs) then
              diags :=
                {
                  file = path;
                  line = line_of c.Parsetree.pc_lhs.Parsetree.ppat_loc;
                  rule = "no-silent-catchall";
                  message =
                    "catch-all arm in a command dispatch match swallows unknown ids; raise or \
                     return an explicit protocol error";
                }
                :: !diags
          | _ -> ())
        cases
  in
  let scan_binding_expr expr =
    let open Ast_iterator in
    let expr_hook sub (e : Parsetree.expression) =
      (match e.Parsetree.pexp_desc with
      | Parsetree.Pexp_match (scrut, cases) ->
        check_cases ~dispatchy:(expr_mentions mentions_cmd_ident scrut) cases
      | Parsetree.Pexp_function cases -> check_cases ~dispatchy:false cases
      | _ -> ());
      default_iterator.expr sub e
    in
    let it = { default_iterator with expr = expr_hook } in
    it.expr it expr
  in
  let rec scan_items items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.Parsetree.pstr_desc with
        | Parsetree.Pstr_value (_, bindings) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              match vb.Parsetree.pvb_pat.Parsetree.ppat_desc with
              | Parsetree.Ppat_var { txt; _ } when dispatch_like txt ->
                scan_binding_expr vb.Parsetree.pvb_expr
              | _ -> ())
            bindings
        | Parsetree.Pstr_module { pmb_expr = { pmod_desc = Parsetree.Pmod_structure s; _ }; _ } ->
          scan_items s
        | Parsetree.Pstr_recmodule mbs ->
          List.iter
            (fun (mb : Parsetree.module_binding) ->
              match mb.pmb_expr.pmod_desc with
              | Parsetree.Pmod_structure s -> scan_items s
              | _ -> ())
            mbs
        | _ -> ())
      items
  in
  scan_items structure;
  !diags

let scan_structure ~path structure =
  let diags = ref [] in
  let emit line rule message = diags := { file = path; line; rule; message } :: !diags in
  let lib_scoped = in_lib path in
  let mentions_clock = ref false in
  let iteration_sites = ref [] in
  let note_clock lid = if List.exists (String.equal "Clock") (flatten lid) then mentions_clock := true in
  let trace_scoped = lib_scoped && (under "trace" path || under "sim" path) in
  let check_ident loc lid =
    note_clock lid;
    let line = line_of loc in
    let name = String.concat "." (flatten lid) in
    (* Stricter than no-wallclock: the trace/sim core feeds byte-diffed
       dumps, so it may not touch the OS at all — any Unix call, not just
       the clock reads, is grounds for failure. *)
    (match flatten lid with
    | "Unix" :: _ | "Stdlib" :: "Unix" :: _ | [ "Sys"; "time" ] | [ "Stdlib"; "Sys"; "time" ] ->
      if trace_scoped then
        emit line "trace-no-wallclock"
          (Printf.sprintf "%s in the trace/sim core; dumps must be byte-identical across runs" name)
    | _ -> ());
    match flatten lid with
    | [ "Sys"; "time" ] | [ "Stdlib"; "Sys"; "time" ] | [ "Unix"; "gettimeofday" ] | [ "Unix"; "time" ]
      ->
      emit line "no-wallclock"
        (Printf.sprintf "%s reads the host clock; simulated code must charge Amoeba_sim.Clock" name)
    | "Random" :: _ :: _ | "Stdlib" :: "Random" :: _ ->
      emit line "no-os-entropy"
        (Printf.sprintf "%s draws OS-visible global randomness; use an explicitly seeded Amoeba_sim.Prng" name)
    | "Marshal" :: _ :: _ ->
      emit line "no-marshal"
        (Printf.sprintf "%s is not a stable byte format; write an explicit codec" name)
    | [ "Hashtbl"; ("hash" | "seeded_hash" | "hash_param") ] ->
      if lib_scoped then
        emit line "no-unstable-hash"
          (Printf.sprintf "%s is unspecified across compiler versions; use Amoeba_sim.Prng.seed_of_string" name)
    | [ "compare" ] | [ "Stdlib"; "compare" ] ->
      if lib_scoped then
        emit line "no-unstable-hash"
          "polymorphic compare; spell out the typed comparison (String.compare, Int.compare, ...)"
    | [ "Hashtbl"; (("iter" | "fold") as fn) ] ->
      if lib_scoped then iteration_sites := (line, "Hashtbl." ^ fn) :: !iteration_sites
    | _ -> ()
  in
  let check_apply_arg (arg : Parsetree.expression) =
    match arg.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc } ->
      if lib_scoped then
        emit (line_of loc) "no-unstable-hash"
          (Printf.sprintf "polymorphic (%s) passed as a function; pass a typed equality" op)
    | _ -> ()
  in
  let open Ast_iterator in
  let expr sub (e : Parsetree.expression) =
    (match e.Parsetree.pexp_desc with
    | Parsetree.Pexp_ident { txt; loc } -> check_ident loc txt
    | Parsetree.Pexp_apply (fn, args) ->
      (* A one-argument application of (=)/(<>) is a partial application
         about to be passed somewhere as a polymorphic equality. *)
      (match (fn.Parsetree.pexp_desc, args) with
      | Parsetree.Pexp_ident { txt = Longident.Lident (("=" | "<>") as op); loc }, [ _ ] ->
        if lib_scoped then
          emit (line_of loc) "no-unstable-hash"
            (Printf.sprintf "polymorphic (%s) partially applied; pass a typed equality" op)
      | _ -> ());
      List.iter (fun (_, a) -> check_apply_arg a) args
    | _ -> ());
    default_iterator.expr sub e
  in
  let typ sub (t : Parsetree.core_type) =
    (match t.Parsetree.ptyp_desc with
    | Parsetree.Ptyp_constr ({ txt; _ }, _) -> note_clock txt
    | _ -> ());
    default_iterator.typ sub t
  in
  let module_expr sub (m : Parsetree.module_expr) =
    (match m.Parsetree.pmod_desc with
    | Parsetree.Pmod_ident { txt; _ } -> note_clock txt
    | _ -> ());
    default_iterator.module_expr sub m
  in
  let iterator = { default_iterator with expr; typ; module_expr } in
  iterator.structure iterator structure;
  if !mentions_clock then
    List.iter
      (fun (line, name) ->
        emit line "no-hashtbl-iteration"
          (Printf.sprintf
             "%s in a clock-coupled module: iteration order is unspecified; use Amoeba_sim.Tbl"
             name))
      !iteration_sites;
  let codecs = List.filter_map (fun (n, l) -> Option.map (fun r -> (n, l, r)) (codec_role n)) (codec_bindings structure) in
  List.iter
    (fun (name, line, (role, suffix)) ->
      let counterpart_role = match role with `Encode -> `Decode | `Decode -> `Encode in
      let counterpart =
        List.exists (fun (_, _, (r, s)) -> r = counterpart_role && s = suffix) codecs
      in
      if not counterpart then
        let expected =
          (match counterpart_role with `Encode -> "encode" | `Decode -> "decode")
          ^ if suffix = "" then "" else "_" ^ suffix
        in
        emit line "wire-symmetry"
          (Printf.sprintf "%s has no matching %s in this file" name expected))
    codecs;
  if lib_scoped then diags := catchall_diags ~path structure @ !diags;
  !diags

(* ---- entry points ---- *)

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception exn -> Error (Printexc.to_string exn)

let order_diagnostics diags =
  List.sort
    (fun a b ->
      let c = String.compare a.file b.file in
      if c <> 0 then c
      else
        let c = Int.compare a.line b.line in
        if c <> 0 then c else String.compare a.rule b.rule)
    diags

let lint_source ~path source =
  match parse ~path source with
  | Error message -> [ { file = path; line = 1; rule = "parse-error"; message } ]
  | Ok structure ->
    let allows = allows_of_source source in
    order_diagnostics
      (List.filter (fun d -> not (suppressed allows d)) (scan_structure ~path structure))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let mli_check path =
  if in_lib path && not (Sys.file_exists (Filename.remove_extension path ^ ".mli")) then
    [ { file = path; line = 1; rule = "mli-coverage"; message = "missing interface file (.mli)" } ]
  else []

let lint_file path = order_diagnostics (mli_check path @ lint_source ~path (read_file path))

let rec ml_files_under path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list
    |> List.sort String.compare
    |> List.filter (fun name -> name <> "" && name.[0] <> '.' && name <> "_build")
    |> List.concat_map (fun name -> ml_files_under (Filename.concat path name))
  else if Filename.check_suffix path ".ml" then [ path ]
  else []

let lint_paths paths =
  order_diagnostics (List.concat_map (fun p -> List.concat_map lint_file (ml_files_under p)) paths)
