module Cap = Amoeba_cap.Capability

(* The client-side whole-file cache. Keys are the printable capability
   form — object number plus sealed check field — so a re-bound name
   (new capability, new check) can never alias an old file's bytes.
   Bullet files are immutable, so entries are never updated in place;
   consistency is entirely the lease layer's problem. *)

type entry = { data : bytes; mutable age : int }

type t = {
  capacity : int;
  table : (string, entry) Hashtbl.t;
  stats : Amoeba_sim.Stats.t;
  evicted_bytes : Amoeba_metrics.Metrics.Counter.t;
  mutable used : int;
  mutable tick : int;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

let create ~capacity_bytes =
  if capacity_bytes < 0 then invalid_arg "File_cache.create: negative capacity";
  {
    capacity = capacity_bytes;
    table = Hashtbl.create 64;
    stats = Amoeba_sim.Stats.create "client-cache";
    evicted_bytes = Amoeba_metrics.Metrics.Counter.create ();
    used = 0;
    tick = 0;
    tracer = None;
  }

let set_tracer t tracer = t.tracer <- tracer

let capacity t = t.capacity

let used_bytes t = t.used

let resident_files t = Hashtbl.length t.table

let stats t = t.stats

let next_age t =
  t.tick <- t.tick + 1;
  t.tick

let find t cap =
  match Hashtbl.find_opt t.table (Cap.to_string cap) with
  | Some e ->
    e.age <- next_age t;
    Amoeba_sim.Stats.incr t.stats "hits";
    Some e.data
  | None ->
    Amoeba_sim.Stats.incr t.stats "misses";
    None

let remove t cap =
  let key = Cap.to_string cap in
  match Hashtbl.find_opt t.table key with
  | None -> ()
  | Some e ->
    Hashtbl.remove t.table key;
    t.used <- t.used - Bytes.length e.data

(* Deterministic LRU victim: the minimum age is unique (ages come from a
   monotonic tick), so the scan order cannot affect the choice; the
   sorted walk keeps even the tie-free scan order reproducible. *)
let lru t =
  let best = ref None in
  Amoeba_sim.Tbl.sorted_iter String.compare
    (fun key e ->
      match !best with
      | Some (_, b) when b.age <= e.age -> ()
      | _ -> best := Some (key, e))
    t.table;
  !best

let evict_one t =
  match lru t with
  | None -> false
  | Some (key, e) ->
    Hashtbl.remove t.table key;
    t.used <- t.used - Bytes.length e.data;
    Amoeba_sim.Stats.incr t.stats "evictions";
    Amoeba_metrics.Metrics.Counter.add t.evicted_bytes (Bytes.length e.data);
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Cache ~name:"cache.client_evict"
        [ ("bytes", Amoeba_trace.Sink.I (Bytes.length e.data)) ]);
    true

let insert t cap data =
  let len = Bytes.length data in
  if len > t.capacity then Amoeba_sim.Stats.incr t.stats "oversize_rejects"
  else begin
    remove t cap;
    let stuck = ref false in
    while t.used + len > t.capacity && not !stuck do
      if not (evict_one t) then stuck := true
    done;
    if t.used + len <= t.capacity then begin
      Hashtbl.replace t.table (Cap.to_string cap) { data; age = next_age t };
      t.used <- t.used + len;
      Amoeba_sim.Stats.incr t.stats "insertions"
    end
  end

let clear t =
  Hashtbl.reset t.table;
  t.used <- 0

let bytes_evicted t = Amoeba_metrics.Metrics.Counter.value t.evicted_bytes

let register_metrics t ~prefix reg =
  let module M = Amoeba_metrics.Metrics in
  M.register_counter reg (prefix ^ ".bytes_evicted") t.evicted_bytes;
  M.gauge reg (prefix ^ ".used_bytes") (fun () -> used_bytes t);
  M.gauge reg (prefix ^ ".capacity_bytes") (fun () -> capacity t);
  M.gauge reg (prefix ^ ".resident_files") (fun () -> resident_files t);
  M.stats_source reg ~prefix t.stats
