module Cap = Amoeba_cap.Capability
module Status = Amoeba_rpc.Status
module Clock = Amoeba_sim.Clock
module Stats = Amoeba_sim.Stats
module Trace = Amoeba_trace.Trace
module Sink = Amoeba_trace.Sink
module Dir_client = Amoeba_dir.Dir_client

(* A leased client station: whole-file cache + per-directory leases.

   The fast path serves a repeat read of an immutable file with zero RPCs
   and zero simulated network time: capability checked locally (trusted
   stations hold the server's sealer), bytes copied out of the client
   cache. The server stays authoritative through the lease protocol —
   the station may serve from cache only while it holds an unexpired
   lease on the directory the name was resolved in, and the directory
   server waits out every granted lease before completing an
   epoch-bumping mutation (Dir_server). Safety rests on the lease
   deadline being dated from the *request send* time, which can never be
   later than the server's grant time.

   The station measures lease validity on its own "lease clock": the
   shared simulated clock plus a skew offset that fault plans can move
   (Plan.Lease_clock_skew). A forward step only makes leases look
   shorter (liveness loss); a backward step would stretch them past the
   server's horizon, so any observed backward step drops every lease on
   the floor — the classic clock-step rule for lease managers. *)

type config = {
  cache_bytes : int;
  skew_margin_us : int;
  local_verify_us : int;
  copy_bytes_per_sec : int;
  attempts : int;
  backoff_us : int;
}

let default_config =
  {
    cache_bytes = 4 * 1024 * 1024;
    skew_margin_us = 10_000;
    local_verify_us = 50;
    copy_bytes_per_sec = 8_000_000;
    attempts = 4;
    backoff_us = 50_000;
  }

type dir_lease = {
  mutable epoch : int; (* -1 until the first grant *)
  mutable deadline : int; (* lease-clock µs; serve from cache strictly before *)
  bindings : (string, Cap.t) Hashtbl.t; (* name -> capability, this epoch *)
}

type t = {
  config : config;
  store : Bullet_core.Client.t;
  dirs : Dir_client.t;
  sealer : Amoeba_cap.Sealer.t option;
  clock : Clock.t;
  cache : File_cache.t;
  leases : (string, dir_lease) Hashtbl.t; (* keyed by directory capability *)
  stats : Stats.t;
  mutable skew_us : int;
  mutable tracer : Trace.ctx option;
}

let create ?(config = default_config) ?sealer ~store ~dirs () =
  {
    config;
    store;
    dirs;
    sealer;
    clock = Amoeba_rpc.Transport.clock (Bullet_core.Client.transport store);
    cache = File_cache.create ~capacity_bytes:config.cache_bytes;
    leases = Hashtbl.create 16;
    stats = Stats.create "station";
    skew_us = 0;
    tracer = None;
  }

let cache t = t.cache

let stats t = t.stats

let trusted t = Option.is_some t.sealer

let set_tracer t tracer =
  t.tracer <- tracer;
  File_cache.set_tracer t.cache tracer

let skew t = t.skew_us

let lease_now t = Clock.now t.clock + t.skew_us

let drop_leases t = Hashtbl.reset t.leases

let set_skew t us =
  if us < t.skew_us then begin
    (* The lease clock was observed stepping backwards. Every deadline
       was measured on the old, faster clock and could now outlive the
       server's horizon; the only safe response is to forget them all. *)
    Stats.incr t.stats "lease_clock_steps_back";
    drop_leases t
  end;
  t.skew_us <- us

let trace_event t name attrs =
  match t.tracer with
  | None -> ()
  | Some tr -> Trace.event tr ~layer:Sink.Client ~name attrs

(* Dir stubs raise on timeouts (lost revalidation messages under fault
   plans); the station retries with doubling backoff, like the Bullet
   client stubs do. Lease RPCs are idempotent. *)
let rec retrying t attempt f =
  try f ()
  with Status.Error Status.Timeout when attempt < t.config.attempts ->
    Stats.incr t.stats "retries";
    Clock.advance t.clock (Amoeba_fault.Backoff.doubling ~base_us:t.config.backoff_us ~attempt);
    retrying t (attempt + 1) f

let lease_state t dir =
  let key = Cap.to_string dir in
  match Hashtbl.find_opt t.leases key with
  | Some ls -> ls
  | None ->
    let ls = { epoch = -1; deadline = min_int; bindings = Hashtbl.create 8 } in
    Hashtbl.replace t.leases key ls;
    ls

let lease_valid t ls = ls.epoch >= 0 && lease_now t < ls.deadline

(* Date the lease from [sent_at] — the lease clock *before* the grant
   request went out. The server records its horizon at serve time, which
   is never earlier, so our deadline (minus the safety margin) is always
   inside the server's write-wait window. *)
let arm t ls ~epoch ~lease_us ~sent_at =
  ls.epoch <- epoch;
  ls.deadline <- sent_at + lease_us - t.config.skew_margin_us

let revoke t ls =
  Stats.incr t.stats "lease_revokes";
  trace_event t "lease.revoke" [];
  Amoeba_sim.Tbl.sorted_iter String.compare
    (fun _name cap -> File_cache.remove t.cache cap)
    ls.bindings;
  Hashtbl.reset ls.bindings

(* One cheap epoch-check RPC when the lease has lapsed: same epoch means
   every binding cached under this directory is still current. *)
let revalidate t dir ls =
  let sent_at = lease_now t in
  let epoch, lease_us = retrying t 1 (fun () -> Dir_client.renew_lease t.dirs dir) in
  if ls.epoch >= 0 && epoch <> ls.epoch then revoke t ls
  else begin
    Stats.incr t.stats "lease_renewals";
    trace_event t "lease.renew" [ ("epoch", Sink.I epoch) ]
  end;
  arm t ls ~epoch ~lease_us ~sent_at

let lookup_leased t dir ls name =
  let sent_at = lease_now t in
  let cap, epoch, lease_us = retrying t 1 (fun () -> Dir_client.lookup_lease t.dirs dir name) in
  if ls.epoch >= 0 && epoch <> ls.epoch then revoke t ls;
  arm t ls ~epoch ~lease_us ~sent_at;
  Stats.incr t.stats "lease_grants";
  trace_event t "lease.grant" [ ("epoch", Sink.I epoch) ];
  Hashtbl.replace ls.bindings name cap;
  cap

let charge_verify t cap =
  match t.sealer with
  | Some sealer ->
    (* trusted station: decrypt-and-compare locally, a few µs of CPU *)
    Stats.incr t.stats "local_verifies";
    Clock.advance t.clock t.config.local_verify_us;
    if not (Amoeba_cap.Sealer.verify_local sealer ~cap) then
      raise (Status.Error Status.Bad_capability)
  | None ->
    (* untrusted station: the check field is opaque; validation is one
       cheap server round trip (SIZE verifies the capability) *)
    Stats.incr t.stats "remote_verifies";
    ignore (retrying t 1 (fun () -> Bullet_core.Client.size t.store cap) : int)

let serve_cached t cap data =
  charge_verify t cap;
  (match t.tracer with
  | None -> Clock.advance t.clock (Bytes.length data * 1_000_000 / t.config.copy_bytes_per_sec)
  | Some tr ->
    Trace.begin_span tr ~layer:Sink.Cache ~name:"station.memcpy";
    Clock.advance t.clock (Bytes.length data * 1_000_000 / t.config.copy_bytes_per_sec);
    Trace.end_span_attrs tr [ ("bytes", Sink.I (Bytes.length data)) ]);
  Stats.incr t.stats "leased_reads";
  data

let fetch t cap =
  let data = retrying t 1 (fun () -> Bullet_core.Client.read t.store cap) in
  File_cache.insert t.cache cap data;
  data

let read_body t dir name =
  Stats.incr t.stats "reads";
  let ls = lease_state t dir in
  if (not (lease_valid t ls)) && ls.epoch >= 0 then begin
    Stats.incr t.stats "lease_expiries";
    trace_event t "lease.expire" [];
    revalidate t dir ls
  end;
  let cap =
    match Hashtbl.find_opt ls.bindings name with
    | Some cap when lease_valid t ls -> cap
    | _ -> lookup_leased t dir ls name
  in
  match File_cache.find t.cache cap with
  | Some data ->
    trace_event t "cache.client_hit" [ ("bytes", Sink.I (Bytes.length data)) ];
    serve_cached t cap data
  | None ->
    trace_event t "cache.client_miss" [];
    fetch t cap

let read t ~dir name =
  match t.tracer with
  | None -> read_body t dir name
  | Some tr ->
    Trace.begin_root tr ~xid:0 ~layer:Sink.Client ~name:"leased.read";
    (match read_body t dir name with
    | data ->
      Trace.end_span_attrs tr [ ("bytes", Sink.I (Bytes.length data)) ];
      data
    | exception e ->
      Trace.end_span_attrs tr [ ("raised", Sink.S "raised") ];
      raise e)

let lease_info t dir =
  match Hashtbl.find_opt t.leases (Cap.to_string dir) with
  | Some ls when ls.epoch >= 0 -> Some (ls.epoch, ls.deadline)
  | _ -> None

let register_metrics t reg =
  let module M = Amoeba_metrics.Metrics in
  (* churn = lease lifecycle events beyond what steady cached reads
     explain; the health evaluator watches its per-interval delta *)
  M.gauge reg "lease.churn" (fun () ->
      let c key = Amoeba_sim.Stats.count t.stats key in
      c "lease_grants" + c "lease_renewals" + c "lease_revokes" + c "lease_expiries"
      + c "lease_clock_steps_back");
  M.gauge reg "lease.skew_us" (fun () -> skew t);
  M.stats_source reg ~prefix:"lease" t.stats;
  File_cache.register_metrics t.cache ~prefix:"client_cache" reg
