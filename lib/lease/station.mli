(** A leased client station: the zero-RPC read fast path.

    Combines three pieces: a whole-file client cache ({!File_cache}),
    client-side capability verification (trusted stations hold the Bullet
    server's sealer and check capabilities locally), and Gray & Cheriton
    leases over directory bindings ({!Amoeba_dir.Dir_server}). A repeat
    read of a cached immutable file under a valid lease issues {e zero}
    RPCs and spends zero simulated network time — only a few µs of local
    verification and the client-memory copy.

    The safety invariant — no stale byte, ever — is pinned by three
    rules: (1) the lease deadline is dated from the request {e send}
    time, never later than the server's grant; (2) the directory server
    waits out every granted lease before completing an epoch-bumping
    mutation; (3) a lease-clock step backwards drops every lease
    (see {!set_skew}). *)

type config = {
  cache_bytes : int;  (** client file-cache capacity *)
  skew_margin_us : int;  (** deadline safety margin against small drift *)
  local_verify_us : int;  (** CPU charge for a trusted local check *)
  copy_bytes_per_sec : int;  (** client RAM copy rate for cache hits *)
  attempts : int;  (** send attempts per lease RPC (timeout retries) *)
  backoff_us : int;  (** base backoff between retries, doubling *)
}

val default_config : config
(** 4 MB cache, 10 ms margin, 50 µs local verify, 8 MB/s copies,
    4 attempts with 50 ms base backoff. *)

type t

val create :
  ?config:config ->
  ?sealer:Amoeba_cap.Sealer.t ->
  store:Bullet_core.Client.t ->
  dirs:Amoeba_dir.Dir_client.t ->
  unit ->
  t
(** A station reading files named in [dirs] and stored in [store].
    With [sealer] (obtained out of band — {!Bullet_core.Server.sealer})
    the station is {e trusted} and verifies capabilities locally; without
    it, cache hits still need one cheap verification RPC, so the
    untrusted path is unchanged in structure, only in count. *)

val read : t -> dir:Amoeba_cap.Capability.t -> string -> bytes
(** Read the file bound to [name] in [dir]. Fast path (valid lease,
    cached file): zero RPCs. Lapsed lease: one [renew_lease] RPC; if the
    epoch moved, cached bindings and bytes for that directory are
    dropped and re-fetched. Unknown binding: one [lookup_lease] RPC.
    Uncached file: a Bullet read, then the file is cached.
    Raises {!Amoeba_rpc.Status.Error} as the underlying stubs do (e.g.
    [Not_found] after a DELETE). *)

val set_skew : t -> int -> unit
(** Set the station's lease-clock offset (µs, may be negative) — the
    [Lease_clock_skew] fault hook. Stepping the clock {e backwards}
    drops every held lease: deadlines measured on the faster clock can
    no longer be trusted. Forward steps only expire leases early. *)

val skew : t -> int

val drop_leases : t -> unit
(** Forget every lease and binding (cached bytes stay; they cannot be
    served without a fresh lease). *)

val lease_info : t -> Amoeba_cap.Capability.t -> (int * int) option
(** [(epoch, deadline)] of the lease held on a directory, if any. *)

val trusted : t -> bool

val cache : t -> File_cache.t

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [reads], [leased_reads] (served from cache under a lease),
    [local_verifies], [remote_verifies], [lease_grants],
    [lease_renewals], [lease_revokes], [lease_expiries], [retries],
    [lease_clock_steps_back]. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Traced stations wrap each read in a ["leased.read"] root span (layer
    Client) and emit [lease.grant]/[lease.renew]/[lease.expire]/
    [lease.revoke] and [cache.client_hit]/[cache.client_miss]/
    [cache.client_evict] events; cache-hit copies appear as
    ["station.memcpy"] spans. *)

val register_metrics : t -> Amoeba_metrics.Metrics.t -> unit
(** Register the station's live surface: a [lease.churn] gauge (the sum
    of grant/renewal/revoke/expiry/clock-step events, whose per-interval
    delta the health evaluator watches), [lease.skew_us], every {!stats}
    counter under [lease.], and the client {!File_cache} under
    [client_cache.]. *)
