(** Client-side whole-file cache.

    The client analogue of the server's RAM cache: immutable Bullet files,
    keyed by their {e capability} (object number + sealed check field), so
    a name re-bound to a new version — a new capability — can never alias
    stale bytes. Byte-bounded with LRU eviction on a deterministic
    monotonic tick. Holds data only; whether a cached file may be served
    without asking the server is the lease layer's decision
    ({!Station}). *)

type t

val create : capacity_bytes:int -> t

val find : t -> Amoeba_cap.Capability.t -> bytes option
(** Cached contents for this exact capability; refreshes its LRU age.
    Counts [hits]/[misses]. *)

val insert : t -> Amoeba_cap.Capability.t -> bytes -> unit
(** Cache a file, evicting LRU entries until it fits. A file larger than
    the whole cache is not cached ([oversize_rejects]). *)

val remove : t -> Amoeba_cap.Capability.t -> unit
(** Drop one entry (revocation path); absent keys are ignored. *)

val clear : t -> unit

val capacity : t -> int

val used_bytes : t -> int

val resident_files : t -> int

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [hits], [misses], [insertions], [evictions],
    [oversize_rejects]. *)

val bytes_evicted : t -> int
(** Payload bytes dropped by LRU replacement so far — a
    {!Amoeba_metrics.Metrics.Counter} cell mirroring the server cache's
    counter of the same name so benches report both sides
    symmetrically. *)

val register_metrics : t -> prefix:string -> Amoeba_metrics.Metrics.t -> unit
(** Register [<prefix>.bytes_evicted], [<prefix>.used_bytes],
    [<prefix>.capacity_bytes], [<prefix>.resident_files] and every
    {!stats} counter under the prefix. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** With a tracer, each eviction emits a [cache.client_evict] event. *)
