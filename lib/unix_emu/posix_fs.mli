(** UNIX emulation on top of the Bullet and directory services.

    "Recently we have implemented a UNIX emulation on top of the Bullet
    service supporting a wealth of existing software." (paper §5)

    Open files are whole-file RAM images (the Bullet model: a process
    operates on files that fit in its memory). Reads and writes work on
    the image; [close] of a written file creates a {e new immutable
    Bullet file} and atomically replaces the directory binding — the old
    version remains until the directory trims it. Consistency is
    close-to-open, like AFS, which the paper cites as validation of
    whole-file transfer. *)

type t
(** A mounted emulated file system (Bullet client + directory client +
    root directory). *)

type fd
(** An open file descriptor. *)

type open_flag =
  | O_RDONLY
  | O_WRONLY
  | O_RDWR
  | O_CREAT  (** create if absent *)
  | O_TRUNC  (** start from empty contents *)
  | O_APPEND  (** position at end before every write *)

type stat_info = {
  st_size : int;
  st_versions : int;  (** retained versions of the binding *)
  st_is_dir : bool;
}

exception Unix_error of string * string
(** [(function, message)] — e.g. [("open", "ENOENT a/b")]. *)

val mount : bullet:Bullet_core.Client.t -> dirs:Amoeba_dir.Dir_client.t -> root:Amoeba_cap.Capability.t -> t

val openfile : t -> string -> open_flag list -> fd
(** Paths are "/"-separated relative to the root. *)

val read : fd -> bytes -> int -> int
(** [read fd buf n] reads up to [n] bytes at the current offset into
    [buf]; returns bytes read (0 at EOF). *)

val write : fd -> bytes -> int
(** Write all of [buf] at the current offset (extending the image as
    needed); returns the byte count. *)

val lseek : fd -> int -> [ `SET | `CUR | `END ] -> int
(** Returns the new offset. *)

val fsize : fd -> int

val close : t -> fd -> unit
(** Publishes a written file as a new version; a read-only close is
    free. Double close is an error. *)

val unlink : t -> string -> unit
(** Remove the binding and delete every retained version from the Bullet
    server. *)

val rename : t -> string -> string -> unit

val mkdir : t -> string -> unit

val readdir : t -> string -> string list
(** Sorted entry names. *)

val stat : t -> string -> stat_info

val with_file : t -> string -> open_flag list -> (fd -> 'a) -> 'a
(** Open, apply, close (also on exceptions). *)

val read_whole : t -> string -> string
(** Convenience: the full contents of a named file. *)

val write_whole : t -> string -> string -> unit
(** Convenience: create/replace a named file with the given contents. *)
