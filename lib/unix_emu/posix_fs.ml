module Status = Amoeba_rpc.Status
module Cap = Amoeba_cap.Capability

type t = {
  bullet : Bullet_core.Client.t;
  dirs : Amoeba_dir.Dir_client.t;
  root : Cap.t;
}

type open_flag = O_RDONLY | O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND

type fd = {
  parent : Cap.t; (* directory holding the binding *)
  leaf : string;
  mutable image : Bytes.t; (* whole-file RAM image *)
  mutable offset : int;
  mutable dirty : bool;
  mutable closed : bool;
  writable : bool;
  append : bool;
}

type stat_info = { st_size : int; st_versions : int; st_is_dir : bool }

exception Unix_error of string * string

let error fn msg = raise (Unix_error (fn, msg))

let mount ~bullet ~dirs ~root = { bullet; dirs; root }

(* Split "a/b/c" into the parent directory capability and leaf name. *)
let resolve_parent t path ~fn =
  let parts = List.filter (fun c -> c <> "") (String.split_on_char '/' path) in
  match List.rev parts with
  | [] -> error fn "empty path"
  | leaf :: rev_dirs ->
    let walk dir name =
      try Amoeba_dir.Dir_client.lookup t.dirs dir name
      with Status.Error _ -> error fn ("ENOENT " ^ path)
    in
    (List.fold_left walk t.root (List.rev rev_dirs), leaf)

let lookup_leaf t parent leaf =
  match Amoeba_dir.Dir_client.lookup t.dirs parent leaf with
  | cap -> Some cap
  | exception Status.Error Status.Not_found -> None
  | exception Status.Error e -> error "lookup" (Status.to_string e)

let is_bullet_file t cap = Amoeba_cap.Port.equal cap.Cap.port (Bullet_core.Client.port t.bullet)

let openfile t path flags =
  let writable = List.exists (fun f -> f = O_WRONLY || f = O_RDWR) flags in
  let parent, leaf = resolve_parent t path ~fn:"open" in
  let existing = lookup_leaf t parent leaf in
  let image =
    match existing with
    | Some cap ->
      if not (is_bullet_file t cap) then error "open" ("EISDIR " ^ path)
      else if List.mem O_TRUNC flags then Bytes.create 0
      else Bullet_core.Client.read t.bullet cap
    | None ->
      if List.mem O_CREAT flags then Bytes.create 0 else error "open" ("ENOENT " ^ path)
  in
  {
    parent;
    leaf;
    image;
    offset = (if List.mem O_APPEND flags then Bytes.length image else 0);
    dirty = (existing = None && List.mem O_CREAT flags) || (existing <> None && List.mem O_TRUNC flags && writable);
    closed = false;
    writable;
    append = List.mem O_APPEND flags;
  }

let check_open fd fn = if fd.closed then error fn "EBADF"

let read fd buf n =
  check_open fd "read";
  let available = max 0 (Bytes.length fd.image - fd.offset) in
  let count = min n (min available (Bytes.length buf)) in
  Bytes.blit fd.image fd.offset buf 0 count;
  fd.offset <- fd.offset + count;
  count

let write fd data =
  check_open fd "write";
  if not fd.writable then error "write" "EBADF: not opened for writing";
  if fd.append then fd.offset <- Bytes.length fd.image;
  let len = Bytes.length data in
  let needed = fd.offset + len in
  if needed > Bytes.length fd.image then begin
    let bigger = Bytes.make needed '\000' in
    Bytes.blit fd.image 0 bigger 0 (Bytes.length fd.image);
    fd.image <- bigger
  end;
  Bytes.blit data 0 fd.image fd.offset len;
  fd.offset <- needed;
  fd.dirty <- true;
  len

let lseek fd pos whence =
  check_open fd "lseek";
  let base =
    match whence with `SET -> 0 | `CUR -> fd.offset | `END -> Bytes.length fd.image
  in
  let target = base + pos in
  if target < 0 then error "lseek" "EINVAL: negative offset";
  fd.offset <- target;
  target

let fsize fd =
  check_open fd "fsize";
  Bytes.length fd.image

let close t fd =
  check_open fd "close";
  fd.closed <- true;
  if fd.dirty then begin
    (* Publish: new immutable file, then atomically swap the binding. *)
    let fresh = Bullet_core.Client.create t.bullet fd.image in
    let (_ : Cap.t option) = Amoeba_dir.Dir_client.replace t.dirs fd.parent fd.leaf fresh in
    ()
  end

let unlink t path =
  let parent, leaf = resolve_parent t path ~fn:"unlink" in
  match Amoeba_dir.Dir_client.versions t.dirs parent leaf with
  | exception Status.Error Status.Not_found -> error "unlink" ("ENOENT " ^ path)
  | versions ->
    Amoeba_dir.Dir_client.remove_name t.dirs parent leaf;
    let delete_quietly cap =
      if is_bullet_file t cap then
        try Bullet_core.Client.delete t.bullet cap with Status.Error _ -> ()
    in
    List.iter delete_quietly versions

let rename t from_path to_path =
  let from_parent, from_leaf = resolve_parent t from_path ~fn:"rename" in
  let to_parent, to_leaf = resolve_parent t to_path ~fn:"rename" in
  match lookup_leaf t from_parent from_leaf with
  | None -> error "rename" ("ENOENT " ^ from_path)
  | Some cap ->
    (* renaming a file onto itself is a successful no-op (POSIX) *)
    if not (Cap.equal from_parent to_parent && from_leaf = to_leaf) then begin
      let (_ : Cap.t option) = Amoeba_dir.Dir_client.replace t.dirs to_parent to_leaf cap in
      Amoeba_dir.Dir_client.remove_name t.dirs from_parent from_leaf
    end

let mkdir t path =
  let parent, leaf = resolve_parent t path ~fn:"mkdir" in
  match lookup_leaf t parent leaf with
  | Some _ -> error "mkdir" ("EEXIST " ^ path)
  | None ->
    let fresh = Amoeba_dir.Dir_client.make_dir t.dirs in
    Amoeba_dir.Dir_client.enter t.dirs parent leaf fresh

let dir_cap_of t path ~fn =
  if List.filter (fun c -> c <> "") (String.split_on_char '/' path) = [] then t.root
  else
    let parent, leaf = resolve_parent t path ~fn in
    match lookup_leaf t parent leaf with
    | Some cap -> cap
    | None -> error fn ("ENOENT " ^ path)

let readdir t path =
  let dir = dir_cap_of t path ~fn:"readdir" in
  List.map fst (Amoeba_dir.Dir_client.list t.dirs dir)

let stat t path =
  let parent, leaf = resolve_parent t path ~fn:"stat" in
  match lookup_leaf t parent leaf with
  | None -> error "stat" ("ENOENT " ^ path)
  | Some cap ->
    if is_bullet_file t cap then
      let size =
        try Bullet_core.Client.size t.bullet cap
        with Status.Error e -> error "stat" (Status.to_string e)
      in
      let versions =
        try List.length (Amoeba_dir.Dir_client.versions t.dirs parent leaf)
        with Status.Error _ -> 1
      in
      { st_size = size; st_versions = versions; st_is_dir = false }
    else { st_size = 0; st_versions = 1; st_is_dir = true }

let with_file t path flags f =
  let fd = openfile t path flags in
  match f fd with
  | result ->
    close t fd;
    result
  | exception e ->
    if not fd.closed then close t fd;
    raise e

let read_whole t path =
  with_file t path [ O_RDONLY ] (fun fd ->
      let buf = Bytes.create (fsize fd) in
      let (_ : int) = read fd buf (Bytes.length buf) in
      Bytes.to_string buf)

let write_whole t path contents =
  with_file t path [ O_WRONLY; O_CREAT; O_TRUNC ] (fun fd ->
      let (_ : int) = write fd (Bytes.of_string contents) in
      ())
