(** Closed-loop multi-client simulation of a single-server service.

    The paper's quantitative-scalability concern: "there may be
    thousands of processors accessing files". The file server is one
    dedicated machine, so under load it behaves as a FIFO queue; each
    pool processor (client) cycles think → request → response. This
    module runs that closed queueing network by discrete-event
    simulation and reports throughput and response times.

    Service demands come from the {e measured} per-operation costs of
    the real server implementations (wire time overlaps at the network,
    server time queues at the server), so the saturation points reflect
    the systems under test, not free parameters. *)

type config = {
  clients : int;  (** pool processors in the loop *)
  think_us : int;  (** per-client think time between requests *)
  server_us : int;  (** service demand at the server per request (queues) *)
  wire_us : int;  (** request+reply wire time (does not queue — the
                      Ethernet has capacity to spare at these rates) *)
  requests_per_client : int;
}

type report = {
  simulated_us : int;  (** virtual time to complete the run *)
  completed : int;
  throughput_per_sec : float;
  mean_response_ms : float;  (** request-to-reply, queueing included *)
  p99_response_ms : float;
  server_utilisation : float;  (** busy fraction of the server *)
}

val run : config -> report
(** Deterministic (FIFO service, fixed think/service times).  Since the
    scheduler landed this delegates to {!Amoeba_sched.Sched.run} with a
    degenerate configuration — one FIFO server station plus a pure-delay
    wire — which replays the original implementation event for event. *)

val run_reference : config -> report
(** The original self-contained single-station implementation, kept as
    the reference model; [run] must agree with it exactly (a regression
    test holds the two to bitwise-equal reports). *)

val saturation_clients : server_us:int -> think_us:int -> wire_us:int -> float
(** The analytic knee of the closed loop:
    [(think + wire + service) / service] — the client population beyond
    which the server saturates. *)
