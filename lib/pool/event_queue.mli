(** Alias for {!Amoeba_sim.Event_queue} (the implementation lives in
    lib/sim so lower layers can schedule events without depending on the
    pool library); see that interface for the (time, priority, sequence)
    ordering and the tie-race sanitizer. *)

type 'a t = 'a Amoeba_sim.Event_queue.t

val create : unit -> 'a t

val push : ?prio:int -> ?pin:int -> ?site:string -> 'a t -> time:int -> 'a -> unit
(** Schedule a payload at an absolute time (µs); see
    {!Amoeba_sim.Event_queue.push} for [prio]/[pin]/[site]. *)

val pop : 'a t -> (int * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> int option

val size : 'a t -> int

val is_empty : 'a t -> bool
