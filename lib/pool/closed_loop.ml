type config = {
  clients : int;
  think_us : int;
  server_us : int;
  wire_us : int;
  requests_per_client : int;
}

type report = {
  simulated_us : int;
  completed : int;
  throughput_per_sec : float;
  mean_response_ms : float;
  p99_response_ms : float;
  server_utilisation : float;
}

type event =
  | Arrive of int  (** client finished thinking; request reaches the server queue *)
  | Server_done  (** the request at the head of the queue completes service *)
  | Reply_received of int  (** response crossed the wire back to the client *)

(* The original single-station implementation, kept verbatim as the
   reference model: the regression test in test_pool checks that the
   sched delegation below reproduces it bit for bit. *)
let run_reference config =
  if config.clients <= 0 || config.requests_per_client <= 0 then
    invalid_arg "Closed_loop.run: need clients and requests";
  let queue = Event_queue.create () in
  (* explicit monotone pins satisfy the tie-race sanitizer: same-time
     orderings here are meant (insertion order IS the model) *)
  let pin_n = ref 0 in
  let pin () =
    incr pin_n;
    !pin_n
  in
  let stats = Amoeba_sim.Stats.create "closed_loop" in
  (* per-client remaining requests; request start times *)
  let remaining = Array.make config.clients config.requests_per_client in
  let started = Array.make config.clients 0 in
  let waiting : int Queue.t = Queue.create () in
  let in_service = ref None in
  let busy_us = ref 0 in
  let completed = ref 0 in
  let finish_time = ref 0 in
  (* every client starts thinking at time 0; a tiny per-client skew
     avoids a thundering herd of perfectly simultaneous arrivals *)
  for c = 0 to config.clients - 1 do
    Event_queue.push ~pin:(pin ()) ~site:"closed_loop.start" queue
      ~time:(config.think_us + (c mod 7))
      (Arrive c)
  done;
  let start_service now =
    match Queue.take_opt waiting with
    | None -> in_service := None
    | Some client ->
      in_service := Some client;
      busy_us := !busy_us + config.server_us;
      Event_queue.push ~pin:(pin ()) ~site:"closed_loop.serve" queue
        ~time:(now + config.server_us) Server_done
  in
  let rec loop now =
    match Event_queue.pop queue with
    | None -> now
    | Some (at, event) ->
      (match event with
      | Arrive client ->
        started.(client) <- at;
        Queue.push client waiting;
        if !in_service = None then start_service at
      | Server_done ->
        (match !in_service with
        | None -> ()
        | Some client ->
          Event_queue.push ~pin:(pin ()) ~site:"closed_loop.reply" queue
            ~time:(at + config.wire_us) (Reply_received client));
        start_service at
      | Reply_received client ->
        let response_us = at - started.(client) in
        Amoeba_sim.Stats.observe stats "response_ms" (float_of_int response_us /. 1000.);
        incr completed;
        finish_time := at;
        remaining.(client) <- remaining.(client) - 1;
        if remaining.(client) > 0 then
          Event_queue.push ~pin:(pin ()) ~site:"closed_loop.think" queue
            ~time:(at + config.think_us) (Arrive client));
      loop at
  in
  let end_time = loop 0 in
  let span = max 1 (max end_time !finish_time) in
  let summary = Amoeba_sim.Stats.summary stats "response_ms" in
  {
    simulated_us = span;
    completed = !completed;
    throughput_per_sec = float_of_int !completed /. (float_of_int span /. 1e6);
    mean_response_ms = summary.Amoeba_sim.Stats.mean;
    p99_response_ms = Amoeba_sim.Stats.percentile stats "response_ms" 0.99;
    server_utilisation = float_of_int !busy_us /. float_of_int span;
  }

(* The closed loop is the degenerate scheduler configuration: one FIFO
   server station plus a pure-delay wire, unbounded admission, no
   retries.  Event-for-event this replays the reference model — same
   arrival skew, same service and reply push order, same observation
   sequence — so the reports agree exactly, floats included. *)
let run config =
  if config.clients <= 0 || config.requests_per_client <= 0 then
    invalid_arg "Closed_loop.run: need clients and requests";
  let open Amoeba_sched in
  let sched_config =
    {
      Sched.stations =
        [ Sched.station "server" Sched.Fifo; Sched.station "wire" ~layer:Amoeba_trace.Sink.Net Sched.Delay ];
      profiles =
        [ { Sched.pr_name = "request"; pr_segments = [ (0, config.server_us); (1, config.wire_us) ] } ];
      clients = config.clients;
      think_us = config.think_us;
      requests_per_client = config.requests_per_client;
      overload = Sched.no_overload;
    }
  in
  let r = Sched.run sched_config in
  let server =
    match r.Sched.station_reports with s :: _ -> s | [] -> assert false
  in
  {
    simulated_us = r.Sched.simulated_us;
    completed = r.Sched.completed;
    throughput_per_sec = r.Sched.throughput_per_sec;
    mean_response_ms = r.Sched.mean_response_ms;
    p99_response_ms = r.Sched.p99_response_ms;
    server_utilisation = server.Sched.utilisation;
  }

let saturation_clients ~server_us ~think_us ~wire_us =
  float_of_int (think_us + wire_us + server_us) /. float_of_int server_us
