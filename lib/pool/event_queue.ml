(* The implementation lives in lib/sim so that lower layers (fault,
   sched) can schedule events without depending on the pool library;
   this alias keeps the historical [Amoeba_pool.Event_queue] path. *)
include Amoeba_sim.Event_queue
