module Event_queue = Amoeba_sim.Event_queue
module Stats = Amoeba_sim.Stats
module Sink = Amoeba_trace.Sink
module Backoff = Amoeba_fault.Backoff

type discipline = Fifo | Round_robin of int | Delay

type station = { st_name : string; st_layer : Sink.layer; st_discipline : discipline }

let station ?(layer = Sink.Server) name discipline =
  { st_name = name; st_layer = layer; st_discipline = discipline }

type profile = { pr_name : string; pr_segments : (int * int) list }

type policy = Block | Shed | Deadline of int

type overload = { accept_limit : int; policy : policy; retry : Backoff.policy option }

let no_overload = { accept_limit = 0; policy = Block; retry = None }

type config = {
  stations : station list;
  profiles : profile list;
  clients : int;
  think_us : int;
  requests_per_client : int;
  overload : overload;
}

type station_report = { sr_name : string; busy_us : int; utilisation : float; max_queue : int }

type report = {
  simulated_us : int;
  offered : int;
  completed : int;
  failed : int;
  shed_count : int;
  deadline_misses : int;
  abandoned : int;
  retried : int;
  late : int;
  max_accept_queue : int;
  throughput_per_sec : float;
  mean_response_ms : float;
  p50_response_ms : float;
  p95_response_ms : float;
  p99_response_ms : float;
  station_reports : station_report list;
}

(* ----- analytics ----------------------------------------------------- *)

let profile_total_us p = List.fold_left (fun acc (_, us) -> acc + us) 0 p.pr_segments

let station_demands_us config =
  let n = List.length config.stations in
  let d = Array.make n 0. in
  let k = float_of_int (List.length config.profiles) in
  List.iter
    (fun p -> List.iter (fun (si, us) -> d.(si) <- d.(si) +. (float_of_int us /. k)) p.pr_segments)
    config.profiles;
  d

let serial_response_us config =
  let total = List.fold_left (fun acc p -> acc + profile_total_us p) 0 config.profiles in
  float_of_int total /. float_of_int (List.length config.profiles)

let bottleneck_demand_us config =
  let d = station_demands_us config in
  let best = ref 0. in
  List.iteri
    (fun i s ->
      match s.st_discipline with
      | Delay -> ()
      | Fifo | Round_robin _ -> if d.(i) > !best then best := d.(i))
    config.stations;
  !best

let saturation_clients config =
  (float_of_int config.think_us +. serial_response_us config) /. bottleneck_demand_us config

let serial_throughput_per_sec config = 1e6 /. serial_response_us config

(* ----- engine -------------------------------------------------------- *)

type job = {
  j_client : int;
  j_req : int;  (* request serial; doubles as the trace id *)
  j_attempt : int;
  j_submit_us : int;
  j_req_start_us : int;  (* first attempt's submit time, for response measurement *)
  j_op : string;  (* profile name, stamped on the root span *)
  j_root_span : int;
  mutable j_segments : (int * int) list;  (* head = current segment *)
  mutable j_slice_left : int;  (* remaining µs of the current segment (round-robin) *)
  mutable j_wait_begin : int;
  mutable j_live : bool;  (* the client is still waiting on this attempt *)
}

type event =
  | Submit of int  (* client starts a fresh request *)
  | Retry of int * int * int  (* client, request, attempt about to be submitted *)
  | Timeout of int * int * int  (* client, request, attempt losing patience *)
  | Fifo_done of int  (* station: the in-service job's segment completes *)
  | Slice_done of int  (* round-robin station: the current slice expires *)
  | Delay_done of job  (* delay station: the job's segment elapses *)

type station_state = {
  st : station;
  mutable cur : job option;
  mutable cur_slice : int;  (* length of the slice in progress (round-robin) *)
  q : job Queue.t;
  mutable busy : int;
  mutable maxq : int;
}

type client_state = {
  mutable todo : int;  (* requests left to resolve, this one included *)
  mutable issued : int;  (* requests started, for profile cycling *)
  mutable cur_req : int;
  mutable cur_attempt : int;
  mutable start_us : int;
  mutable waiting : job option;
}

let validate config =
  if config.clients <= 0 then invalid_arg "Sched.run: clients must be positive";
  if config.requests_per_client <= 0 then
    invalid_arg "Sched.run: requests_per_client must be positive";
  if config.think_us < 0 then invalid_arg "Sched.run: negative think_us";
  if config.stations = [] then invalid_arg "Sched.run: no stations";
  List.iter
    (fun s ->
      match s.st_discipline with
      | Round_robin q when q <= 0 -> invalid_arg "Sched.run: round-robin quantum must be positive"
      | Fifo | Delay | Round_robin _ -> ())
    config.stations;
  if config.profiles = [] then invalid_arg "Sched.run: no profiles";
  let n = List.length config.stations in
  List.iter
    (fun p ->
      if p.pr_segments = [] then invalid_arg "Sched.run: empty profile";
      List.iter
        (fun (si, us) ->
          if si < 0 || si >= n then invalid_arg "Sched.run: segment station out of range";
          if us < 0 then invalid_arg "Sched.run: negative segment duration")
        p.pr_segments)
    config.profiles;
  (match config.overload.policy with
  | Deadline d when d < 0 -> invalid_arg "Sched.run: negative deadline"
  | Block | Shed | Deadline _ -> ());
  match config.overload.retry with
  | Some p when p.Backoff.timeout_us <= 0 ->
    invalid_arg "Sched.run: retry policy needs a positive timeout_us"
  | Some _ | None -> ()

let run ?sink ?metrics ?observer config =
  validate config;
  let stations = Array.of_list config.stations in
  let st =
    Array.map
      (fun s -> { st = s; cur = None; cur_slice = 0; q = Queue.create (); busy = 0; maxq = 0 })
      stations
  in
  let profiles = Array.of_list config.profiles in
  let queue : event Event_queue.t = Event_queue.create () in
  (* every push carries an explicit, strictly monotone pin so the
     tie-race sanitizer can prove same-(time, prio) orderings are meant,
     not accidents of insertion order *)
  let pin_n = ref 0 in
  let pin () =
    incr pin_n;
    !pin_n
  in
  let stats = Stats.create "sched" in
  let clients =
    Array.init config.clients (fun _ ->
        {
          todo = config.requests_per_client;
          issued = 0;
          cur_req = 0;
          cur_attempt = 0;
          start_us = 0;
          waiting = None;
        })
  in
  let accept_q : job Queue.t = Queue.create () in
  let req_counter = ref 0 in
  let span_counter = ref 0 in
  let admitted = ref 0 in
  (* the run's tallies live in metrics counter cells so a registry scrape
     mid-run reads the same instruments the final report is built from *)
  let module MC = Amoeba_metrics.Metrics.Counter in
  let offered = MC.create () in
  let completed = MC.create () in
  let failed = MC.create () in
  let shed_n = MC.create () in
  let miss_n = MC.create () in
  let abandon_n = MC.create () in
  let retry_n = MC.create () in
  let late_n = MC.create () in
  let resp_hist = Stats.Hist.create () in
  (match metrics with
  | None -> ()
  | Some reg ->
    let module M = Amoeba_metrics.Metrics in
    M.register_counter reg "sched.offered" offered;
    M.register_counter reg "sched.completed" completed;
    M.register_counter reg "sched.failed" failed;
    M.register_counter reg "sched.sheds" shed_n;
    M.register_counter reg "sched.deadline_misses" miss_n;
    M.register_counter reg "sched.abandoned" abandon_n;
    M.register_counter reg "sched.retried" retry_n;
    M.register_counter reg "sched.late" late_n;
    M.register_hist reg "sched.response_us" resp_hist;
    M.gauge reg "sched.accept_queue" (fun () -> Queue.length accept_q);
    M.gauge reg "sched.admitted" (fun () -> !admitted));
  let max_accept = ref 0 in
  let span_end = ref 0 in
  let touch at = if at > !span_end then span_end := at in
  let next_span () =
    incr span_counter;
    !span_counter
  in
  let emit ~trace ~id ~parent ~depth ~layer ~name ~b ~e attrs =
    match sink with
    | None -> ()
    | Some s ->
      Sink.emit s
        {
          Sink.trace_id = trace;
          span_id = id;
          parent_id = parent;
          depth;
          layer;
          name;
          begin_us = b;
          end_us = e;
          attrs;
        }
  in
  let emit_event job now name =
    emit ~trace:job.j_req ~id:(next_span ()) ~parent:job.j_root_span ~depth:1 ~layer:Sink.Server
      ~name ~b:now ~e:now []
  in
  let close_root job now outcome =
    emit ~trace:job.j_req ~id:job.j_root_span ~parent:0 ~depth:0 ~layer:Sink.Client
      ~name:"sched.attempt" ~b:job.j_submit_us ~e:now
      [
        ("op", Sink.S job.j_op);
        ("client", Sink.I job.j_client);
        ("attempt", Sink.I job.j_attempt);
        ("outcome", Sink.S outcome);
      ]
  in
  let emit_wait job now station_name =
    if now > job.j_wait_begin then
      emit ~trace:job.j_req ~id:(next_span ()) ~parent:job.j_root_span ~depth:1 ~layer:Sink.Server
        ~name:("sched.wait." ^ station_name) ~b:job.j_wait_begin ~e:now []
  in
  let emit_serve job ~b ~e s =
    emit ~trace:job.j_req ~id:(next_span ()) ~parent:job.j_root_span ~depth:1 ~layer:s.st.st_layer
      ~name:("sched.serve." ^ s.st.st_name) ~b ~e []
  in
  (* client lifecycle ------------------------------------------------- *)
  let next_request cs c now =
    cs.cur_attempt <- 0;
    cs.todo <- cs.todo - 1;
    if cs.todo > 0 then
      Event_queue.push ~pin:(pin ()) ~site:"sched.think" queue ~time:(now + config.think_us)
        (Submit c)
  in
  let retry_or_fail cs c attempt now =
    match config.overload.retry with
    | Some p when attempt < p.Backoff.attempts ->
      MC.incr retry_n;
      Event_queue.push ~pin:(pin ()) ~site:"sched.retry" queue
        ~time:(now + Backoff.delay_us p ~attempt)
        (Retry (c, cs.cur_req, attempt + 1))
    | Some _ | None ->
      MC.incr failed;
      next_request cs c now
  in
  (* station mechanics ------------------------------------------------ *)
  let rec start_fifo si job now =
    let s = st.(si) in
    s.cur <- Some job;
    match job.j_segments with
    | [] -> assert false
    | (_, us) :: _ ->
      s.busy <- s.busy + us;
      emit_wait job now s.st.st_name;
      Event_queue.push ~pin:(pin ()) ~site:"sched.fifo_done" queue ~time:(now + us) (Fifo_done si)

  and dispatch_rr si now =
    let s = st.(si) in
    match Queue.take_opt s.q with
    | None -> s.cur <- None
    | Some job ->
      s.cur <- Some job;
      let quantum =
        match s.st.st_discipline with Round_robin q -> q | Fifo | Delay -> assert false
      in
      let slice = if job.j_slice_left < quantum then job.j_slice_left else quantum in
      s.cur_slice <- slice;
      s.busy <- s.busy + slice;
      emit_wait job now s.st.st_name;
      Event_queue.push ~pin:(pin ()) ~site:"sched.slice_done" queue ~time:(now + slice)
        (Slice_done si)

  and enqueue_segment job now =
    match job.j_segments with
    | [] -> complete job now
    | (si, us) :: _ ->
      job.j_wait_begin <- now;
      let s = st.(si) in
      (match s.st.st_discipline with
      | Delay ->
        s.busy <- s.busy + us;
        Event_queue.push ~pin:(pin ()) ~site:"sched.delay_done" queue ~time:(now + us)
          (Delay_done job)
      | Fifo ->
        (* the queue can be non-empty while [cur] is briefly [None]
           (admission re-entering from a completion mid-handler); joining
           behind the waiters keeps service strictly FIFO *)
        (match s.cur with
        | None when Queue.is_empty s.q -> start_fifo si job now
        | None | Some _ ->
          Queue.push job s.q;
          if Queue.length s.q > s.maxq then s.maxq <- Queue.length s.q)
      | Round_robin _ ->
        job.j_slice_left <- us;
        Queue.push job s.q;
        if Queue.length s.q > s.maxq then s.maxq <- Queue.length s.q;
        (match s.cur with None -> dispatch_rr si now | Some _ -> ()))

  and advance job now =
    job.j_segments <- List.tl job.j_segments;
    enqueue_segment job now

  and complete job now =
    decr admitted;
    let cs = clients.(job.j_client) in
    if job.j_live then begin
      job.j_live <- false;
      cs.waiting <- None;
      close_root job now "ok";
      let response_us = now - job.j_req_start_us in
      Stats.observe stats "response_ms" (float_of_int response_us /. 1000.);
      Stats.Hist.record resp_hist response_us;
      MC.incr completed;
      next_request cs job.j_client now
    end
    else begin
      MC.incr late_n;
      close_root job now "late"
    end;
    drain_accept now

  and admit job now =
    incr admitted;
    if now > job.j_submit_us then
      emit ~trace:job.j_req ~id:(next_span ()) ~parent:job.j_root_span ~depth:1 ~layer:Sink.Server
        ~name:"sched.accept" ~b:job.j_submit_us ~e:now [];
    job.j_wait_begin <- now;
    enqueue_segment job now

  and drain_accept now =
    let limit = config.overload.accept_limit in
    if limit > 0 then begin
      let continue = ref true in
      while !continue && !admitted < limit do
        match Queue.take_opt accept_q with
        | None -> continue := false
        | Some job -> (
          match config.overload.policy with
          | Deadline d when now - job.j_submit_us > d ->
            MC.incr miss_n;
            emit_event job now "sched.deadline_miss";
            close_root job now "deadline";
            if job.j_live then begin
              job.j_live <- false;
              let cs = clients.(job.j_client) in
              cs.waiting <- None;
              retry_or_fail cs job.j_client job.j_attempt now
            end
          | Block | Shed | Deadline _ -> admit job now)
      done
    end
  in
  let submit_attempt c attempt now =
    let cs = clients.(c) in
    if attempt = 1 then begin
      incr req_counter;
      cs.cur_req <- !req_counter;
      cs.start_us <- now;
      cs.issued <- cs.issued + 1
    end;
    cs.cur_attempt <- attempt;
    MC.incr offered;
    (* client [c]'s k-th request runs profile [(c + k) mod n]: staggered
       so simultaneous clients spread over the mix, cycling so every
       population sees the full mix *)
    let prof = profiles.((c + cs.issued - 1) mod Array.length profiles) in
    let job =
      {
        j_client = c;
        j_req = cs.cur_req;
        j_attempt = attempt;
        j_submit_us = now;
        j_req_start_us = cs.start_us;
        j_op = prof.pr_name;
        j_root_span = next_span ();
        j_segments = prof.pr_segments;
        j_slice_left = 0;
        j_wait_begin = now;
        j_live = true;
      }
    in
    cs.waiting <- Some job;
    (match config.overload.retry with
    | Some p ->
      Event_queue.push ~pin:(pin ()) ~site:"sched.timeout" queue
        ~time:(now + p.Backoff.timeout_us)
        (Timeout (c, job.j_req, attempt))
    | None -> ());
    let limit = config.overload.accept_limit in
    if limit <= 0 || (!admitted < limit && Queue.is_empty accept_q) then admit job now
    else
      match config.overload.policy with
      | Shed ->
        MC.incr shed_n;
        emit_event job now "sched.shed";
        close_root job now "shed";
        job.j_live <- false;
        cs.waiting <- None;
        retry_or_fail cs c attempt now
      | Block | Deadline _ ->
        Queue.push job accept_q;
        if Queue.length accept_q > !max_accept then max_accept := Queue.length accept_q
  in
  let handle at event =
    match event with
    | Submit c ->
      touch at;
      submit_attempt c 1 at
    | Retry (c, req, attempt) ->
      let cs = clients.(c) in
      if cs.cur_req = req && cs.cur_attempt + 1 = attempt then begin
        touch at;
        submit_attempt c attempt at
      end
    | Timeout (c, req, attempt) -> (
      let cs = clients.(c) in
      match cs.waiting with
      | Some job when job.j_req = req && job.j_attempt = attempt ->
        touch at;
        MC.incr abandon_n;
        emit_event job at "sched.abandon";
        job.j_live <- false;
        cs.waiting <- None;
        retry_or_fail cs c attempt at
      | Some _ | None -> ())
    | Fifo_done si -> (
      touch at;
      let s = st.(si) in
      match s.cur with
      | None -> assert false
      | Some job ->
        s.cur <- None;
        let us = match job.j_segments with (_, us) :: _ -> us | [] -> assert false in
        emit_serve job ~b:(at - us) ~e:at s;
        advance job at;
        (* advancing can start a new job here (a completion admits queued
           work into this freed station); only dispatch if still idle *)
        (match s.cur with
        | Some _ -> ()
        | None -> (
          match Queue.take_opt s.q with None -> () | Some next -> start_fifo si next at)))
    | Slice_done si -> (
      touch at;
      let s = st.(si) in
      match s.cur with
      | None -> assert false
      | Some job ->
        s.cur <- None;
        emit_serve job ~b:(at - s.cur_slice) ~e:at s;
        job.j_slice_left <- job.j_slice_left - s.cur_slice;
        if job.j_slice_left <= 0 then advance job at
        else begin
          job.j_wait_begin <- at;
          Queue.push job s.q
        end;
        (match s.cur with None -> dispatch_rr si at | Some _ -> ()))
    | Delay_done job ->
      touch at;
      let si, us = match job.j_segments with seg :: _ -> seg | [] -> assert false in
      emit_serve job ~b:(at - us) ~e:at st.(si);
      advance job at
  in
  (* every client starts thinking at time 0; the same per-client skew the
     closed loop has always used avoids a perfectly simultaneous herd *)
  for c = 0 to config.clients - 1 do
    Event_queue.push ~pin:(pin ()) ~site:"sched.start" queue
      ~time:(config.think_us + (c mod 7))
      (Submit c)
  done;
  let rec loop () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (at, event) ->
      handle at event;
      (match observer with None -> () | Some f -> f at);
      loop ()
  in
  loop ();
  let span = max 1 !span_end in
  let summary = Stats.summary stats "response_ms" in
  {
    simulated_us = span;
    offered = MC.value offered;
    completed = MC.value completed;
    failed = MC.value failed;
    shed_count = MC.value shed_n;
    deadline_misses = MC.value miss_n;
    abandoned = MC.value abandon_n;
    retried = MC.value retry_n;
    late = MC.value late_n;
    max_accept_queue = !max_accept;
    throughput_per_sec = float_of_int (MC.value completed) /. (float_of_int span /. 1e6);
    mean_response_ms = summary.Stats.mean;
    p50_response_ms = Stats.percentile stats "response_ms" 0.5;
    p95_response_ms = Stats.percentile stats "response_ms" 0.95;
    p99_response_ms = Stats.percentile stats "response_ms" 0.99;
    station_reports =
      Array.to_list
        (Array.map
           (fun s ->
             {
               sr_name = s.st.st_name;
               busy_us = s.busy;
               utilisation = float_of_int s.busy /. float_of_int span;
               max_queue = s.maxq;
             })
           st);
  }
