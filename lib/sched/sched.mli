(** Deterministic multi-station concurrent-server runtime with
    admission control.

    The paper's Bullet server is a multithreaded Amoeba service: one
    request's disk transfer overlaps another request's CPU and wire
    time.  This module models that concurrency as a closed queueing
    network of {e stations} — CPU, one per mirrored drive arm, the
    Ethernet — each a FIFO (or round-robin, approximating the processor
    sharing a threaded CPU gives) or a pure delay.  A request is a
    {e profile}: the ordered [(station, µs)] segments measured from the
    real server by trace attribution, so concurrency results stay pinned
    to implementation costs rather than free parameters.

    N closed-loop clients cycle think → request → response.  An
    admission layer in front of the stations bounds concurrent requests
    and applies an overload policy; combined with the client-side
    retry/backoff from {!Amoeba_fault.Backoff} it reproduces retry-storm
    metastability ([Block] + retries) and its fixes ([Shed],
    [Deadline]).

    Everything runs on an integer-µs virtual clock driven by
    {!Amoeba_sim.Event_queue}; two runs of the same configuration are
    byte-identical, including the emitted trace spans. *)

type discipline =
  | Fifo  (** serve one job to completion at a time *)
  | Round_robin of int
      (** processor sharing, approximated deterministically by
          round-robin slices of the given quantum (µs, positive) *)
  | Delay
      (** infinite-server station: jobs elapse without queueing (the
          under-utilised Ethernet, client-side wire time) *)

type station = { st_name : string; st_layer : Amoeba_trace.Sink.layer; st_discipline : discipline }

val station : ?layer:Amoeba_trace.Sink.layer -> string -> discipline -> station
(** [layer] defaults to [Server]; it tags this station's serve spans so
    sched traces attribute through the existing toolchain. *)

type profile = {
  pr_name : string;  (** operation class, e.g. ["read4k"] *)
  pr_segments : (int * int) list;
      (** ordered [(station index, duration µs)] demands; client [c]'s
          k-th request (1-based) runs profile [(c + k - 1) mod n], so
          every client cycles through the whole mix *)
}

type policy =
  | Block  (** queue every arrival until admitted, however long it waits *)
  | Shed  (** reject arrivals outright while the server is full *)
  | Deadline of int
      (** queue arrivals but drop any that waited longer than this (µs)
          at dispatch time *)

type overload = {
  accept_limit : int;  (** max concurrently admitted requests; [<= 0] = unbounded *)
  policy : policy;
  retry : Amoeba_fault.Backoff.policy option;
      (** client behaviour on rejection or timeout; [timeout_us] must be
          positive when present (the client's patience per attempt) *)
}

val no_overload : overload
(** Unbounded admission, no client timeouts — pure queueing. *)

type config = {
  stations : station list;
  profiles : profile list;
  clients : int;
  think_us : int;
  requests_per_client : int;  (** requests each client resolves (ok or failed) *)
  overload : overload;
}

type station_report = {
  sr_name : string;
  busy_us : int;  (** total service time charged; for [Delay] stations this
                      is occupancy and may exceed the simulated span *)
  utilisation : float;  (** [busy_us / simulated_us] *)
  max_queue : int;  (** high-water mark of jobs waiting (excluding in service) *)
}

type report = {
  simulated_us : int;
  offered : int;  (** attempts submitted, retries included *)
  completed : int;  (** requests whose reply reached a still-waiting client *)
  failed : int;  (** requests that exhausted their retry budget *)
  shed_count : int;
  deadline_misses : int;
  abandoned : int;  (** attempts the client gave up on (timeout) *)
  retried : int;
  late : int;  (** completions after the client had stopped waiting — work
                   the server wasted *)
  max_accept_queue : int;
  throughput_per_sec : float;  (** goodput: [completed] over the span *)
  mean_response_ms : float;  (** successful requests, first submit to reply *)
  p50_response_ms : float;
  p95_response_ms : float;
  p99_response_ms : float;
  station_reports : station_report list;
}

val run :
  ?sink:Amoeba_trace.Sink.t ->
  ?metrics:Amoeba_metrics.Metrics.t ->
  ?observer:(int -> unit) ->
  config ->
  report
(** Deterministic discrete-event run.  With [metrics], the run's tallies
    are registered as live instruments — [sched.offered], [sched.sheds],
    [sched.deadline_misses], [sched.completed], [sched.failed],
    [sched.abandoned], [sched.retried], [sched.late] counters, a
    [sched.response_us] histogram, and [sched.accept_queue] /
    [sched.admitted] gauges — so a scrape taken mid-run reads the same
    cells the final report is built from.  [observer] is called with the
    virtual time after every handled event: the hook a metrics scraper
    (or any other sampler) polls from.  With [sink], every attempt emits
    a [sched.attempt] root span (trace id = request serial) with
    [sched.accept] / [sched.wait.<station>] / [sched.serve.<station>]
    children and zero-length [sched.shed] / [sched.deadline_miss] /
    [sched.abandon] markers, all on the virtual clock.  Clients start
    thinking at time 0 with the closed loop's historical per-client skew
    of [(c mod 7)] µs.  Raises [Invalid_argument] on a malformed
    configuration. *)

(** {2 Analytics}

    All means are uniform over the profile list, matching the round-robin
    client-to-profile assignment. *)

val profile_total_us : profile -> int
(** End-to-end demand of one profile — the zero-contention response time. *)

val station_demands_us : config -> float array
(** Mean demand per request placed on each station. *)

val serial_response_us : config -> float
(** Mean zero-contention response time over the profile mix. *)

val bottleneck_demand_us : config -> float
(** Largest mean per-request demand over the queueing (non-[Delay])
    stations — the reciprocal of the concurrent-capacity limit. *)

val saturation_clients : config -> float
(** The analytic knee [(think + serial response) / bottleneck demand]:
    the client population beyond which the bottleneck station saturates.
    Degenerates to the closed loop's [(think + wire + service) / service]
    for a single-FIFO-plus-wire configuration. *)

val serial_throughput_per_sec : config -> float
(** What a one-request-at-a-time server would peak at ([1e6 / serial
    response]) — the baseline concurrent overlap must beat. *)
