(** Capability rights bits.

    The paper: "there may be a bit indicating the right to read the file,
    another bit for deleting the file, and so on". Rights are an 8-bit
    field carried in the capability and sealed into the check field, so a
    holder cannot widen them without the server's secret. *)

type t
(** An 8-bit rights set. *)

val none : t

val all : t

val read : t
(** Right to retrieve the object ([BULLET.READ], [BULLET.SIZE]). *)

val delete : t
(** Right to destroy the object. *)

val modify : t
(** Right to derive a new version ([BULLET.MODIFY], directory updates). *)

val admin : t
(** Server administration (compaction, statistics). *)

val union : t -> t -> t

val inter : t -> t -> t

val subset : t -> t -> bool
(** [subset a b] is true when every right in [a] is also in [b]. *)

val mem : t -> t -> bool
(** [mem bit set] — alias for [subset bit set], reads well for single
    bits. *)

val equal : t -> t -> bool

val to_int : t -> int

val of_int : int -> t
(** Truncates to 8 bits. *)

val pp : Format.formatter -> t -> unit
