type t = { port : Port.t; obj : int; rights : Rights.t; check : int64 }

let v ~port ~obj ~rights ~check =
  if obj < 0 then invalid_arg "Capability.v: negative object number";
  { port; obj; rights; check }

let equal a b =
  Port.equal a.port b.port && a.obj = b.obj
  && Rights.equal a.rights b.rights
  && Int64.equal a.check b.check

let compare a b =
  let c = Port.compare a.port b.port in
  if c <> 0 then c
  else
    let c = Int.compare a.obj b.obj in
    if c <> 0 then c
    else
      let c = Int.compare (Rights.to_int a.rights) (Rights.to_int b.rights) in
      if c <> 0 then c else Int64.compare a.check b.check

let pp ppf t =
  Format.fprintf ppf "cap(%a obj=%d %a check=%Lx)" Port.pp t.port t.obj Rights.pp t.rights t.check

let wire_size = Port.wire_size + 4 + 2 + 8

let set_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let get_u32 buf off =
  let acc = ref 0 in
  for i = 0 to 3 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !acc

let set_u64 buf off v =
  for i = 0 to 7 do
    let shift = 8 * (7 - i) in
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.shift_right_logical v shift) land 0xff))
  done

let get_u64 buf off =
  let acc = ref 0L in
  for i = 0 to 7 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc

let write t buf off =
  Port.write t.port buf off;
  set_u32 buf (off + 6) t.obj;
  Bytes.set buf (off + 10) '\000';
  Bytes.set buf (off + 11) (Char.chr (Rights.to_int t.rights));
  set_u64 buf (off + 12) t.check

let read buf off =
  {
    port = Port.read buf off;
    obj = get_u32 buf (off + 6);
    rights = Rights.of_int (Char.code (Bytes.get buf (off + 11)));
    check = get_u64 buf (off + 12);
  }

let to_bytes t =
  let buf = Bytes.create wire_size in
  write t buf 0;
  buf

let of_bytes buf =
  if Bytes.length buf <> wire_size then invalid_arg "Capability.of_bytes: bad length";
  read buf 0

let to_string t =
  Printf.sprintf "%s:%x:%02x:%Lx" (Port.to_string t.port) t.obj (Rights.to_int t.rights) t.check

let of_string s =
  match String.split_on_char ':' s with
  | [ port; obj; rights; check ] -> (
    match
      ( int_of_string_opt ("0x" ^ obj),
        int_of_string_opt ("0x" ^ rights),
        Int64.of_string_opt ("0x" ^ check) )
    with
    | Some obj, Some rights, Some check ->
      { port = Port.of_string port; obj; rights = Rights.of_int rights; check }
    | _ -> invalid_arg "Capability.of_string: malformed fields")
  | _ -> invalid_arg "Capability.of_string: want port:obj:rights:check"
