type t = int (* invariant: 0..255 *)

let none = 0x00

let all = 0xFF

let read = 0x01

let delete = 0x02

let modify = 0x04

let admin = 0x80

let union = ( lor )

let inter = ( land )

let subset a b = a land b = a

let mem = subset

let equal = Int.equal

let to_int t = t

let of_int v = v land 0xFF

let pp ppf t =
  let names =
    List.filter_map
      (fun (bit, name) -> if subset bit t then Some name else None)
      [ (read, "read"); (delete, "delete"); (modify, "modify"); (admin, "admin") ]
  in
  match names with
  | [] -> Format.fprintf ppf "none(%02x)" t
  | _ -> Format.fprintf ppf "%s(%02x)" (String.concat "+" names) t
