(** Capability-sealing cryptography (XTEA).

    The paper protects capabilities by encrypting (rights, random-number)
    pairs under a server-private key; the scheme only needs a keyed
    permutation on small blocks, so a self-contained XTEA implementation
    suffices. This is protection against forging by ordinary clients as in
    the paper, not modern cryptographic strength. *)

type key
(** A 128-bit XTEA key. *)

val key_of_string : string -> key
(** Derive a key from arbitrary bytes (hashed and folded to 128 bits). *)

val key_random : Amoeba_sim.Prng.t -> key

val encrypt : key -> int64 -> int64
(** Encrypt one 64-bit block. *)

val decrypt : key -> int64 -> int64
(** Inverse of {!encrypt} under the same key. *)

val one_way : int64 -> int64
(** A fixed one-way function on 64-bit values, as Amoeba uses to derive a
    server's public get-port from its private put-port (Davies–Meyer over
    XTEA with a fixed key schedule). *)
