type key = { k0 : int; k1 : int; k2 : int; k3 : int } (* each 32 bits *)

let mask32 = 0xFFFF_FFFF

let delta = 0x9E3779B9

let rounds = 32

(* FNV-1a over the string, folded into four 32-bit words. *)
let key_of_string s =
  let fnv seed =
    let h = ref (0x811C9DC5 lxor seed) in
    String.iter
      (fun c ->
        h := (!h lxor Char.code c) land mask32;
        h := !h * 0x01000193 land mask32)
      s;
    !h
  in
  { k0 = fnv 0; k1 = fnv 1; k2 = fnv 2; k3 = fnv 3 }

let key_random prng =
  let word () = Int64.to_int (Amoeba_sim.Prng.next_int64 prng) land mask32 in
  { k0 = word (); k1 = word (); k2 = word (); k3 = word () }

let key_word key = function
  | 0 -> key.k0
  | 1 -> key.k1
  | 2 -> key.k2
  | _ -> key.k3

let split block =
  let hi = Int64.to_int (Int64.shift_right_logical block 32) land mask32 in
  let lo = Int64.to_int block land mask32 in
  (hi, lo)

let join hi lo =
  Int64.logor (Int64.shift_left (Int64.of_int (hi land mask32)) 32) (Int64.of_int (lo land mask32))

let encrypt key block =
  let v0 = ref (fst (split block)) and v1 = ref (snd (split block)) in
  let sum = ref 0 in
  for _ = 1 to rounds do
    let mix = (((!v1 lsl 4) lxor (!v1 lsr 5)) + !v1) land mask32 in
    v0 := (!v0 + (mix lxor ((!sum + key_word key (!sum land 3)) land mask32))) land mask32;
    sum := (!sum + delta) land mask32;
    let mix = (((!v0 lsl 4) lxor (!v0 lsr 5)) + !v0) land mask32 in
    v1 := (!v1 + (mix lxor ((!sum + key_word key ((!sum lsr 11) land 3)) land mask32))) land mask32
  done;
  join !v0 !v1

let decrypt key block =
  let v0 = ref (fst (split block)) and v1 = ref (snd (split block)) in
  let sum = ref (delta * rounds land mask32) in
  for _ = 1 to rounds do
    let mix = (((!v0 lsl 4) lxor (!v0 lsr 5)) + !v0) land mask32 in
    v1 := (!v1 - (mix lxor ((!sum + key_word key ((!sum lsr 11) land 3)) land mask32))) land mask32;
    sum := (!sum - delta) land mask32;
    let mix = (((!v1 lsl 4) lxor (!v1 lsr 5)) + !v1) land mask32 in
    v0 := (!v0 - (mix lxor ((!sum + key_word key (!sum land 3)) land mask32))) land mask32
  done;
  join !v0 !v1

let one_way_key = key_of_string "amoeba-one-way-function"

(* Davies-Meyer: H(x) = E_k(x) xor x, not invertible even with the key. *)
let one_way x = Int64.logxor (encrypt one_way_key x) x
