type t = { key : Crypto.key }

let create ~key = { key }

let of_passphrase phrase = { key = Crypto.key_of_string phrase }

let mask48 = 0xFFFF_FFFF_FFFFL

let fresh_random _t prng = Int64.logand (Amoeba_sim.Prng.next_int64 prng) mask48

(* Pack rights into the top 16 bits and the 48-bit random below; the whole
   64-bit block is then encrypted, so flipping any rights bit scrambles
   the entire check field. *)
let plaintext ~random ~rights =
  Int64.logor
    (Int64.shift_left (Int64.of_int (Rights.to_int rights)) 48)
    (Int64.logand random mask48)

let seal t ~random ~rights = Crypto.encrypt t.key (plaintext ~random ~rights)

let verify t ~random ~cap =
  let open Capability in
  Int64.equal (Crypto.decrypt t.key cap.check) (plaintext ~random ~rights:cap.rights)

let unseal t ~check =
  let plain = Crypto.decrypt t.key check in
  let rights = Rights.of_int (Int64.to_int (Int64.shift_right_logical plain 48) land 0xFFFF) in
  (rights, Int64.logand plain mask48)

(* A station that holds the sealer can check a capability's authenticity
   without the inode: decrypting a genuine check field must reproduce the
   rights carried in the clear. The 48-bit random also pops out, but only
   the server can compare it against the inode — local verification says
   "sealed by this server with these rights", not "the object still
   exists"; existence/freshness is the lease protocol's job. *)
let verify_local t ~cap =
  let rights, _random = unseal t ~check:cap.Capability.check in
  Rights.to_int rights = Rights.to_int cap.Capability.rights

let restrict t ~random ~cap ~rights =
  if not (verify t ~random ~cap) then None
  else
    let narrowed = Rights.inter cap.Capability.rights rights in
    Some
      (Capability.v ~port:cap.Capability.port ~obj:cap.Capability.obj ~rights:narrowed
         ~check:(seal t ~random ~rights:narrowed))
