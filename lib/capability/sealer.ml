type t = { key : Crypto.key }

let create ~key = { key }

let of_passphrase phrase = { key = Crypto.key_of_string phrase }

let mask48 = 0xFFFF_FFFF_FFFFL

let fresh_random _t prng = Int64.logand (Amoeba_sim.Prng.next_int64 prng) mask48

(* Pack rights into the top 16 bits and the 48-bit random below; the whole
   64-bit block is then encrypted, so flipping any rights bit scrambles
   the entire check field. *)
let plaintext ~random ~rights =
  Int64.logor
    (Int64.shift_left (Int64.of_int (Rights.to_int rights)) 48)
    (Int64.logand random mask48)

let seal t ~random ~rights = Crypto.encrypt t.key (plaintext ~random ~rights)

let verify t ~random ~cap =
  let open Capability in
  Int64.equal (Crypto.decrypt t.key cap.check) (plaintext ~random ~rights:cap.rights)

let restrict t ~random ~cap ~rights =
  if not (verify t ~random ~cap) then None
  else
    let narrowed = Rights.inter cap.Capability.rights rights in
    Some
      (Capability.v ~port:cap.Capability.port ~obj:cap.Capability.obj ~rights:narrowed
         ~check:(seal t ~random ~rights:narrowed))
