type t = int64 (* invariant: top 16 bits zero *)

let mask48 = 0xFFFF_FFFF_FFFFL

let of_int64 v = Int64.logand v mask48

let to_int64 t = t

let random prng = of_int64 (Amoeba_sim.Prng.next_int64 prng)

let equal = Int64.equal

let compare = Int64.compare

let hash t = Int64.to_int t land max_int

let to_string t = Printf.sprintf "%012Lx" t

let of_string s =
  if String.length s <> 12 then invalid_arg "Port.of_string: want 12 hex digits";
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> of_int64 v
  | None -> invalid_arg "Port.of_string: malformed hex"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let wire_size = 6

let write t buf off =
  for i = 0 to 5 do
    let shift = 8 * (5 - i) in
    Bytes.set buf (off + i) (Char.chr (Int64.to_int (Int64.shift_right_logical t shift) land 0xff))
  done

let read buf off =
  let acc = ref 0L in
  for i = 0 to 5 do
    acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (Char.code (Bytes.get buf (off + i))))
  done;
  !acc
