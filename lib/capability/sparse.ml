type t = unit

let create () = ()

let owner_rights = Rights.all

(* Mix the rights into the random before the one-way function; the pad
   spreads the 8 rights bits across the word so single-bit rights
   changes flip many input bits. *)
let pad rights =
  let r = Int64.of_int (Rights.to_int rights) in
  Int64.logxor (Int64.mul r 0x0101_0101_0101_0101L) 0x5DEECE66DL

let owner_check ~random = random

let restricted_check () ~random ~rights = Crypto.one_way (Int64.logxor random (pad rights))

let restrict_offline () ~owner ~rights =
  if not (Rights.equal owner.Capability.rights owner_rights) then
    invalid_arg "Sparse.restrict_offline: need the owner capability";
  if Rights.equal rights owner_rights then
    invalid_arg "Sparse.restrict_offline: restricted rights must be narrower";
  (* the owner's check field IS the object random *)
  let random = owner.Capability.check in
  Capability.v ~port:owner.Capability.port ~obj:owner.Capability.obj ~rights
    ~check:(restricted_check () ~random ~rights)

let verify () ~random ~cap =
  if Rights.equal cap.Capability.rights owner_rights then Int64.equal cap.Capability.check random
  else Int64.equal cap.Capability.check (restricted_check () ~random ~rights:cap.Capability.rights)
