(** Sparse capabilities: client-side rights restriction.

    The paper's protection section ends with "Other schemes are
    described in [12]" — Tanenbaum, Mullender & van Renesse, {e Using
    Sparse Capabilities in a Distributed Operating System} (ICDCS 1986).
    That scheme's trick: the {e owner} capability's check field is the
    object's big random number itself, and a capability with rights [r]
    carries [F(random XOR pad(r))] for a public one-way function [F].
    Anyone holding the owner capability can mint a restricted one
    {e without talking to the server}; nobody can go the other way,
    because inverting [F] is infeasible.

    Verification is server-side as usual: recompute from the stored
    random. This module implements that scheme next to the XTEA
    {!Sealer} so the two can be compared (the benchmark's MICRO section
    does). *)

type t
(** Holds the public one-way function's parameters (none are secret —
    the security lives in the object randoms). *)

val create : unit -> t

val owner_rights : Rights.t
(** The full-rights value; only the owner capability may carry it. *)

val owner_check : random:int64 -> int64
(** Check field of the owner capability: the random itself. *)

val restricted_check : t -> random:int64 -> rights:Rights.t -> int64
(** Server-side: the check field for a restricted capability. *)

val restrict_offline : t -> owner:Capability.t -> rights:Rights.t -> Capability.t
(** Client-side: derive a weaker capability from the {e owner}
    capability without any RPC. Raises [Invalid_argument] if [owner]
    does not carry {!owner_rights} or [rights] equals
    {!owner_rights}. *)

val verify : t -> random:int64 -> cap:Capability.t -> bool
(** Server-side validity check for both owner and restricted
    capabilities. *)
