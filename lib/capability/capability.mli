(** Amoeba capabilities.

    A capability names and protects one object: the {e port} identifies
    the managing server, the {e object number} indexes the server's table
    (an inode number for the Bullet server), the {e rights} say what the
    holder may do, and the {e check field} seals the rights against
    tampering (see {!Sealer}). *)

type t = {
  port : Port.t;
  obj : int;  (** object number within the server, 0 .. 2^31-1 *)
  rights : Rights.t;
  check : int64;  (** sealed check field *)
}

val v : port:Port.t -> obj:int -> rights:Rights.t -> check:int64 -> t

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val wire_size : int
(** Bytes of the wire encoding: 6 (port) + 4 (object) + 2 (rights) +
    8 (check) = 20. *)

val write : t -> bytes -> int -> unit
(** Store the wire encoding at the given offset. *)

val read : bytes -> int -> t
(** Decode a capability at the given offset. *)

val to_bytes : t -> bytes

val of_bytes : bytes -> t
(** Raises [Invalid_argument] if the buffer is not exactly
    {!wire_size} bytes. *)

val to_string : t -> string
(** Printable round-trippable form, [port:obj:rights:check] in hex. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on malformed
    input. *)
