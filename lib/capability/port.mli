(** Amoeba service ports.

    A port is a 48-bit location-independent number chosen by a server and
    published to its clients; RPC requests are addressed to ports, not
    machines. *)

type t
(** An opaque 48-bit port. Structural equality and hashing work. *)

val of_int64 : int64 -> t
(** Truncates to 48 bits. *)

val to_int64 : t -> int64

val random : Amoeba_sim.Prng.t -> t
(** A fresh random port, as a server chooses at startup. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_string : t -> string
(** 12 hex digits. *)

val of_string : string -> t
(** Inverse of {!to_string}. Raises [Invalid_argument] on malformed
    input. *)

val pp : Format.formatter -> t -> unit

val write : t -> bytes -> int -> unit
(** [write p buf off] stores the 6-byte wire encoding at [off]. *)

val read : bytes -> int -> t
(** [read buf off] decodes 6 bytes at [off]. *)

val wire_size : int
(** 6 bytes. *)
