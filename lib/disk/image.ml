let magic = "BIMG0001"

let set_u32 buf off v =
  for i = 0 to 3 do
    Bytes.set buf (off + i) (Char.chr ((v lsr (8 * (3 - i))) land 0xff))
  done

let get_u32 buf off =
  let acc = ref 0 in
  for i = 0 to 3 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get buf (off + i))
  done;
  !acc

let header_bytes = String.length magic + (6 * 4)

let encode_header (g : Geometry.t) =
  let buf = Bytes.create header_bytes in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  let base = String.length magic in
  set_u32 buf base g.Geometry.sector_bytes;
  set_u32 buf (base + 4) g.Geometry.sector_count;
  set_u32 buf (base + 8) g.Geometry.avg_seek_us;
  set_u32 buf (base + 12) g.Geometry.rotation_us;
  set_u32 buf (base + 16) g.Geometry.media_rate;
  set_u32 buf (base + 20) g.Geometry.controller_us;
  buf

let decode_header buf =
  if Bytes.length buf < header_bytes then Error "image truncated"
  else if Bytes.sub_string buf 0 (String.length magic) <> magic then Error "not a drive image"
  else begin
    let base = String.length magic in
    Ok
      {
        Geometry.sector_bytes = get_u32 buf base;
        sector_count = get_u32 buf (base + 4);
        avg_seek_us = get_u32 buf (base + 8);
        rotation_us = get_u32 buf (base + 12);
        media_rate = get_u32 buf (base + 16);
        controller_us = get_u32 buf (base + 20);
      }
  end

let save device path =
  let geometry = Block_device.geometry device in
  let contents =
    Block_device.peek device ~sector:0 ~count:geometry.Geometry.sector_count
  in
  let temporary = path ^ ".tmp" in
  let oc = open_out_bin temporary in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc (encode_header geometry);
      output_bytes oc contents);
  Sys.rename temporary path

let load ~id ~clock path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let header = Bytes.create header_bytes in
        match really_input ic header 0 header_bytes with
        | exception End_of_file -> Error "image truncated"
        | () -> (
          match decode_header header with
          | Error e -> Error e
          | Ok geometry -> (
            let size = Geometry.capacity_bytes geometry in
            let contents = Bytes.create size in
            match really_input ic contents 0 size with
            | exception End_of_file -> Error "image contents truncated"
            | () ->
              let device = Block_device.create ~id ~geometry ~clock in
              Block_device.poke device ~sector:0 contents;
              Ok device)))

let load_or_create ~id ~clock ~geometry path =
  if Sys.file_exists path then
    match load ~id ~clock path with
    | Ok device -> Ok (device, `Loaded)
    | Error e -> Error e
  else Ok (Block_device.create ~id ~geometry ~clock, `Created)
