type pending = { target : Block_device.t; at_sector : int; data : bytes }

type t = {
  drives : Block_device.t list;
  clock : Amoeba_sim.Clock.t;
  pending : pending Queue.t;
  stats : Amoeba_sim.Stats.t;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

exception No_live_drive

let create drives =
  match drives with
  | [] -> invalid_arg "Mirror.create: empty drive list"
  | first :: rest ->
    let geometry = Block_device.geometry first in
    let same_geometry d = Block_device.geometry d = geometry in
    if not (List.for_all same_geometry rest) then
      invalid_arg "Mirror.create: drives must share a geometry";
    {
      drives;
      clock = Block_device.clock first;
      pending = Queue.create ();
      stats = Amoeba_sim.Stats.create "mirror";
      tracer = None;
    }

let set_tracer t tracer =
  t.tracer <- tracer;
  List.iter (fun d -> Block_device.set_tracer d tracer) t.drives

let drives t = t.drives

let geometry t =
  match t.drives with
  | d :: _ -> Block_device.geometry d
  | [] -> assert false

let live t = List.filter (fun d -> not (Block_device.is_failed d)) t.drives

let live_count t = List.length (live t)

let primary t = match live t with d :: _ -> d | [] -> raise No_live_drive

let drain t =
  let apply { target; at_sector; data } =
    if not (Block_device.is_failed target) then
      Amoeba_sim.Clock.unobserved t.clock (fun () ->
          Block_device.write target ~sector:at_sector data)
  in
  Queue.iter apply t.pending;
  Queue.clear t.pending

let crash t = Queue.clear t.pending

let pending_count t = Queue.length t.pending

let rec read_from t ~sector ~count = function
  | [] -> raise No_live_drive
  | drive :: others -> (
    try Block_device.read drive ~sector ~count
    with Block_device.Failure _ ->
      Amoeba_sim.Stats.incr t.stats "read_failovers";
      (match t.tracer with
      | None -> ()
      | Some tr ->
        Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.failover"
          [ ("drive", Amoeba_trace.Sink.S (Block_device.id drive)) ]);
      read_from t ~sector ~count others)

let read t ~sector ~count =
  match t.tracer with
  | None ->
    drain t;
    if live_count t < List.length t.drives then Amoeba_sim.Stats.incr t.stats "degraded_reads";
    read_from t ~sector ~count (live t)
  | Some tr ->
    Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.read" (fun () ->
        drain t;
        if live_count t < List.length t.drives then begin
          Amoeba_sim.Stats.incr t.stats "degraded_reads";
          Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.degraded" []
        end;
        read_from t ~sector ~count (live t))

let write_live t ~sync ~sector data =
  match live t with
  | [] -> raise No_live_drive
  | targets ->
    let sync = max 0 (min sync (List.length targets)) in
    let rec split i = function
      | [] -> ([], [])
      | d :: rest ->
        let front, back = split (i + 1) rest in
        if i < sync then (d :: front, back) else (front, d :: back)
    in
    let foreground, background = split 0 targets in
    let write_to d () = Block_device.write d ~sector data in
    let (_ : unit list) = Amoeba_sim.Clock.parallel t.clock (List.map write_to foreground) in
    let enqueue d = Queue.add { target = d; at_sector = sector; data = Bytes.copy data } t.pending in
    List.iter enqueue background

let write t ~sync ~sector data =
  match t.tracer with
  | None ->
    drain t;
    write_live t ~sync ~sector data
  | Some tr ->
    Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.write" (fun () ->
        drain t;
        write_live t ~sync ~sector data)

let recover t =
  drain t;
  let src = primary t in
  let fix drive =
    if Block_device.is_failed drive then begin
      Block_device.repair drive;
      Block_device.copy_from ~src ~dst:drive;
      Amoeba_sim.Stats.incr t.stats "resyncs"
    end
  in
  List.iter fix t.drives

let stats t = t.stats
