(* Each drive gets a slot: the device, its dirty-sector map, and whether
   an online resync is in flight for it. The mirror's state machine per
   drive is

     clean (online, no dirty sectors)
       --fail-->        offline   (writes landing meanwhile mark dirty)
       --rejoin-->      resyncing (repaired, fully dirty, syncing = true)
       --last clear-->  clean

   and [recover] short-circuits offline -> clean with the paper's
   whole-disk copy. *)
type slot = { device : Block_device.t; dirty : Dirty.t; mutable syncing : bool }

type pending = { target : slot; at_sector : int; data : bytes }

type t = {
  slots : slot array;
  clock : Amoeba_sim.Clock.t;
  pending : pending Queue.t;
  stats : Amoeba_sim.Stats.t;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

type sync_state = Clean | Degraded | Resyncing of { sectors_remaining : int }

exception No_live_drive

let create drives =
  match drives with
  | [] -> invalid_arg "Mirror.create: empty drive list"
  | first :: rest ->
    let geometry = Block_device.geometry first in
    let same_geometry d = Block_device.geometry d = geometry in
    if not (List.for_all same_geometry rest) then
      invalid_arg "Mirror.create: drives must share a geometry";
    let slot device =
      {
        device;
        dirty = Dirty.create ~sectors:geometry.Geometry.sector_count;
        syncing = false;
      }
    in
    {
      slots = Array.of_list (List.map slot drives);
      clock = Block_device.clock first;
      pending = Queue.create ();
      stats = Amoeba_sim.Stats.create "mirror";
      tracer = None;
    }

let set_tracer t tracer =
  t.tracer <- tracer;
  Array.iter (fun s -> Block_device.set_tracer s.device tracer) t.slots

let drives t = Array.to_list (Array.map (fun s -> s.device) t.slots)

let geometry t = Block_device.geometry t.slots.(0).device

let slot_live s = not (Block_device.is_failed s.device)

let live_slots t = List.filter slot_live (Array.to_list t.slots)

let live_count t =
  Array.fold_left (fun n s -> if slot_live s then n + 1 else n) 0 t.slots

let primary t =
  match live_slots t with s :: _ -> s.device | [] -> raise No_live_drive

let sync_state t =
  if Array.exists (fun s -> not (slot_live s)) t.slots then Degraded
  else if Array.exists (fun s -> s.syncing) t.slots then
    Resyncing
      {
        sectors_remaining =
          Array.fold_left
            (fun n s -> if s.syncing then n + Dirty.remaining s.dirty else n)
            0 t.slots;
      }
  else Clean

let sync_state_label t =
  match sync_state t with
  | Clean -> "clean"
  | Degraded -> "degraded"
  | Resyncing { sectors_remaining } -> Printf.sprintf "resyncing:%d" sectors_remaining

(* The last dirty sector just got cleared (by a resync step, a foreground
   write or a read-repair): the drive is a full replica again. *)
let check_complete t slot =
  if slot.syncing && Dirty.remaining slot.dirty = 0 then begin
    slot.syncing <- false;
    Amoeba_sim.Stats.incr t.stats "resyncs_completed";
    match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.resync_done"
        [ ("drive", Amoeba_trace.Sink.S (Block_device.id slot.device)) ]
  end

let sector_count_of t data = Bytes.length data / (geometry t).Geometry.sector_bytes

let drain t =
  let apply { target; at_sector; data } =
    if slot_live target then begin
      Amoeba_sim.Clock.unobserved t.clock (fun () ->
          Block_device.write target.device ~sector:at_sector data);
      if target.syncing then begin
        Dirty.clear target.dirty ~sector:at_sector ~count:(sector_count_of t data);
        check_complete t target
      end
    end
    else
      (* the write never landed: the region is stale on this drive *)
      Dirty.mark target.dirty ~sector:at_sector ~count:(sector_count_of t data)
  in
  Queue.iter apply t.pending;
  Queue.clear t.pending

let crash t = Queue.clear t.pending

let pending_count t = Queue.length t.pending

(* Serve a read from the first live slot that holds current bytes for the
   range. A resyncing slot whose range is still dirty is passed over
   (its bytes are stale) and remembered: once a good source answered, the
   data is written back to every passed-over slot off the measured path —
   the read-repair that lets foreground traffic shrink the resync
   backlog instead of waiting behind it. *)
let read_repair t slot ~sector data =
  Amoeba_sim.Stats.incr t.stats "read_repairs";
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.read_repair"
      [
        ("drive", Amoeba_trace.Sink.S (Block_device.id slot.device));
        ("sector", Amoeba_trace.Sink.I sector);
      ]);
  match
    Amoeba_sim.Clock.unobserved t.clock (fun () ->
        Block_device.write slot.device ~sector data)
  with
  | () ->
    Dirty.clear slot.dirty ~sector ~count:(sector_count_of t data);
    check_complete t slot
  | exception Block_device.Failure _ -> ()

let rec read_from t ~sector ~count ~stale = function
  | [] -> raise No_live_drive
  | slot :: others ->
    if slot.syncing && Dirty.is_dirty slot.dirty ~sector ~count then begin
      Amoeba_sim.Stats.incr t.stats "resync_fallthroughs";
      read_from t ~sector ~count ~stale:(slot :: stale) others
    end
    else begin
      match Block_device.read slot.device ~sector ~count with
      | data ->
        List.iter (fun s -> read_repair t s ~sector data) (List.rev stale);
        data
      | exception Block_device.Failure _ ->
        Amoeba_sim.Stats.incr t.stats "read_failovers";
        (match t.tracer with
        | None -> ()
        | Some tr ->
          Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.failover"
            [ ("drive", Amoeba_trace.Sink.S (Block_device.id slot.device)) ]);
        read_from t ~sector ~count ~stale others
    end

let read t ~sector ~count =
  match t.tracer with
  | None ->
    drain t;
    if live_count t < Array.length t.slots then Amoeba_sim.Stats.incr t.stats "degraded_reads";
    read_from t ~sector ~count ~stale:[] (live_slots t)
  | Some tr ->
    Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.read" (fun () ->
        drain t;
        if live_count t < Array.length t.slots then begin
          Amoeba_sim.Stats.incr t.stats "degraded_reads";
          Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.degraded" []
        end;
        read_from t ~sector ~count ~stale:[] (live_slots t))

let write_live t ~sync ~sector data =
  let count = sector_count_of t data in
  (* a write that cannot land on an offline drive leaves that drive's
     range stale — exactly what the rejoin resync must repair *)
  Array.iter
    (fun s -> if not (slot_live s) then Dirty.mark s.dirty ~sector ~count)
    t.slots;
  match live_slots t with
  | [] -> raise No_live_drive
  | targets ->
    let sync = max 0 (min sync (List.length targets)) in
    let rec split i = function
      | [] -> ([], [])
      | s :: rest ->
        let front, back = split (i + 1) rest in
        if i < sync then (s :: front, back) else (front, s :: back)
    in
    let foreground, background = split 0 targets in
    let write_to s () = Block_device.write s.device ~sector data in
    let (_ : unit list) = Amoeba_sim.Clock.parallel t.clock (List.map write_to foreground) in
    (* fresh data just landed synchronously: those regions are current *)
    List.iter
      (fun s ->
        if s.syncing then begin
          Dirty.clear s.dirty ~sector ~count;
          check_complete t s
        end)
      foreground;
    let enqueue s =
      Queue.add { target = s; at_sector = sector; data = Bytes.copy data } t.pending
    in
    List.iter enqueue background

let write t ~sync ~sector data =
  match t.tracer with
  | None ->
    drain t;
    write_live t ~sync ~sector data
  | Some tr ->
    Amoeba_trace.Trace.in_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.write" (fun () ->
        drain t;
        write_live t ~sync ~sector data)

(* ---- recovery ---- *)

let all_clean slot =
  if Dirty.remaining slot.dirty > 0 then
    Dirty.clear slot.dirty ~sector:0 ~count:(Dirty.sectors slot.dirty);
  slot.syncing <- false

let recover t =
  drain t;
  let src = primary t in
  let fix slot =
    if Block_device.is_failed slot.device then begin
      Block_device.repair slot.device;
      Block_device.copy_from ~src ~dst:slot.device;
      all_clean slot;
      Amoeba_sim.Stats.incr t.stats "resyncs"
    end
  in
  Array.iter fix t.slots

let rejoin t =
  drain t;
  Array.iter
    (fun slot ->
      if Block_device.is_failed slot.device then begin
        Block_device.repair slot.device;
        (* trust nothing a returning drive holds *)
        Dirty.mark_all slot.dirty;
        slot.syncing <- true;
        Amoeba_sim.Stats.incr t.stats "rejoins";
        match t.tracer with
        | None -> ()
        | Some tr ->
          Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"mirror.rejoin"
            [ ("drive", Amoeba_trace.Sink.S (Block_device.id slot.device)) ]
      end)
    t.slots

(* One clean, live source for a range: any other drive that is online
   and whose copy of the range is current. *)
let source_for t slot ~sector ~count =
  let ok s =
    s != slot && slot_live s && not (s.syncing && Dirty.is_dirty s.dirty ~sector ~count)
  in
  Array.fold_left (fun acc s -> match acc with Some _ -> acc | None -> if ok s then Some s else None) None t.slots

let copy_run t ~src ~dst ~sector ~count =
  let data = Block_device.read src.device ~sector ~count in
  Block_device.write dst.device ~sector data;
  Dirty.clear dst.dirty ~sector ~count;
  Amoeba_sim.Stats.incr t.stats "resync_steps";
  Amoeba_sim.Stats.add t.stats "resync_sectors" count;
  check_complete t dst

let resync_step ?(batch = 256) t =
  if batch <= 0 then invalid_arg "Mirror.resync_step: batch must be positive";
  drain t;
  let next acc s = match acc with Some _ -> acc | None -> if s.syncing && slot_live s then Some s else None in
  match Array.fold_left next None t.slots with
  | None -> 0
  | Some slot -> (
    match Dirty.next_run slot.dirty ~limit:batch with
    | None ->
      check_complete t slot;
      0
    | Some (sector, count) -> (
      match source_for t slot ~sector ~count with
      | None -> 0 (* no clean replica to copy from; stay as we are *)
      | Some src -> (
        match t.tracer with
        | None -> (
          match copy_run t ~src ~dst:slot ~sector ~count with
          | () -> count
          | exception Block_device.Failure _ -> 0)
        | Some tr ->
          Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.resync";
          let copied =
            match copy_run t ~src ~dst:slot ~sector ~count with
            | () -> count
            | exception Block_device.Failure _ -> 0
          in
          Amoeba_trace.Trace.end_span_attrs tr
            [
              ("drive", Amoeba_trace.Sink.S (Block_device.id slot.device));
              ("sector", Amoeba_trace.Sink.I sector);
              ("count", Amoeba_trace.Sink.I copied);
              ("remaining", Amoeba_trace.Sink.I (Dirty.remaining slot.dirty));
            ];
          copied)))

let stats t = t.stats

let register_metrics t reg =
  let module M = Amoeba_metrics.Metrics in
  M.gauge reg "mirror.sync_state" (fun () ->
      match sync_state t with Clean -> 0 | Degraded -> 1 | Resyncing _ -> 2);
  M.gauge reg "mirror.sectors_remaining" (fun () ->
      (* a drive that is offline but not yet resyncing rejoins fully
         dirty, so its whole capacity is the prospective backlog *)
      let sectors = (geometry t).Geometry.sector_count in
      Array.fold_left
        (fun n s ->
          if s.syncing then n + Dirty.remaining s.dirty
          else if not (slot_live s) then n + sectors
          else n)
        0 t.slots);
  M.gauge reg "mirror.live_drives" (fun () -> live_count t);
  M.gauge reg "mirror.pending_writes" (fun () -> pending_count t);
  M.stats_source reg ~prefix:"mirror" t.stats
