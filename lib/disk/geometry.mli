(** Physical disk geometry and timing parameters.

    The cost model is the classical seek + rotational-latency + media
    transfer decomposition. A request for sectors that continue exactly
    where the head stopped is sequential and pays media transfer only;
    any other request pays an average seek, an average half-rotation, and
    the transfer. This is what makes contiguous (Bullet) layouts fast and
    scattered (block-list) layouts slow, which is the paper's central
    physical argument. *)

type t = {
  sector_bytes : int;  (** physical sector size, bytes *)
  sector_count : int;  (** total sectors on the drive *)
  avg_seek_us : int;  (** average seek time, microseconds *)
  rotation_us : int;  (** time of one full platter rotation *)
  media_rate : int;  (** sustained media transfer rate, bytes/second *)
  controller_us : int;  (** fixed per-request controller overhead *)
}

val v1989_800mb : t
(** The paper's drive: one of the two 800 MB drives on the Bullet server,
    modelled on late-80s SCSI disks (512 B sectors, 18 ms average seek,
    3600 RPM, 1.2 MB/s media rate). *)

val small : sectors:int -> t
(** A drive with [sectors] sectors and the 1989 timing parameters; used to
    keep unit-test images small. *)

val capacity_bytes : t -> int
(** Total capacity in bytes. *)

val transfer_us : t -> int -> int
(** [transfer_us g bytes] is the media transfer time for [bytes] bytes. *)

val access_us : t -> sequential:bool -> write:bool -> int -> int
(** [access_us g ~sequential ~write bytes] is the full cost of one
    request: controller overhead + (seek + half rotation unless
    [sequential]) + transfer, plus an extra half rotation for writes —
    synchronous writes on late-80s controllers routinely missed a
    revolution waiting for the target sector to come around again. *)

val sectors_for : t -> int -> int
(** [sectors_for g bytes] is the number of sectors needed to hold [bytes]
    (i.e. byte count rounded up to sector granularity). *)
