(** A simulated sector-addressed disk drive.

    Reads and writes operate on whole sectors, charge virtual time to the
    clock according to the drive {!Geometry.t}, track the head position
    (so sequential access is cheap and scattered access pays seeks), and
    accrue per-operation statistics. Drives can be failed and repaired to
    exercise the Bullet server's mirroring and recovery paths, and single
    sectors can be marked bad to exercise the startup consistency scan. *)

type t

exception Failure of string
(** Raised when accessing a failed drive or a bad sector; carries the
    drive id and the failing sector. *)

val create : id:string -> geometry:Geometry.t -> clock:Amoeba_sim.Clock.t -> t
(** A fresh, zero-filled drive. *)

val id : t -> string

val geometry : t -> Geometry.t

val clock : t -> Amoeba_sim.Clock.t
(** The simulation clock this drive charges time to. *)

val capacity_bytes : t -> int

val read : t -> sector:int -> count:int -> bytes
(** [read t ~sector ~count] returns [count] sectors starting at [sector],
    charging access time. Raises {!Failure} if the drive is failed or the
    range covers a bad sector, [Invalid_argument] if out of range. *)

val write : t -> sector:int -> bytes -> unit
(** [write t ~sector data] writes [data] — whose length must be a positive
    multiple of the sector size — starting at [sector], charging access
    time. Same exceptions as {!read}. *)

val fail : t -> unit
(** Take the drive offline: every subsequent access raises {!Failure}. *)

val repair : t -> unit
(** Bring a failed drive back online. Its contents are whatever they were
    at failure time; recovery (copying from a replica) is the caller's
    job. *)

val is_failed : t -> bool

val set_fault_hook : t -> (sector:int -> count:int -> write:bool -> bool) option -> unit
(** Install (or with [None] remove) a transient-fault predicate,
    consulted on every timed access. Returning [true] makes that access
    raise {!Failure} after charging its access time — a soft media error:
    the same access retried may succeed. Used by [Amoeba_fault.Injector]
    for probabilistic sector-error plans. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install (or with [None] remove) the tracer.  Traced accesses emit a
    [disk.read]/[disk.write] span whose [disk.seek]/[disk.rotate]/
    [disk.xfer] children split the access charge into its mechanical
    components; the children advance exactly the same total time as the
    untraced single charge. *)

val set_bad_sector : t -> int -> unit
(** Mark one sector as unreadable/unwritable. *)

val clear_bad_sector : t -> int -> unit

val copy_from : src:t -> dst:t -> unit
(** Whole-disk copy, the paper's recovery mechanism ("Recovery is simply
    done by copying the complete disk"). Charges one sequential read of
    [src] and one sequential write of [dst]. The drives must have equal
    capacity. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [reads], [writes], [sectors_read], [sectors_written],
    [seeks] (non-sequential accesses). *)

val peek : t -> sector:int -> count:int -> bytes
(** Read without charging time or stats; for tests and image inspection. *)

val poke : t -> sector:int -> bytes -> unit
(** Write without charging time or stats; for tests and image setup. *)
