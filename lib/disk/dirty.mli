(** Per-drive dirty-sector tracking for online mirror resync.

    A bitmap with one bit per sector plus a scan cursor. A sector is
    {e dirty} on a drive when the drive may not hold the mirror's
    current contents for it: writes that landed while the drive was
    offline mark their range, and a drive rejoining after a failure is
    conservatively marked fully dirty. The resync scheduler drains
    dirtiness in bounded contiguous runs ({!next_run}); foreground
    writes and read-repair {!clear} regions as fresh data lands on the
    drive.

    Pure data, no clock, no randomness — the state is a deterministic
    function of the mark/clear history, which is what makes a resync
    schedule reproducible. *)

type t

val create : sectors:int -> t
(** All-clean tracker for a drive of [sectors] sectors. Raises
    [Invalid_argument] when [sectors <= 0]. *)

val sectors : t -> int

val remaining : t -> int
(** Number of dirty sectors — the resync backlog. *)

val mark : t -> sector:int -> count:int -> unit
(** Mark a range dirty (idempotent per sector). *)

val mark_all : t -> unit
(** Mark the whole drive dirty — a drive rejoining after a failure
    trusts none of its contents. *)

val clear : t -> sector:int -> count:int -> unit
(** Mark a range clean: current data just landed on the drive. *)

val is_dirty : t -> sector:int -> count:int -> bool
(** Whether any sector in the range is dirty — i.e. whether a read of
    this range from the drive could return stale bytes. *)

val next_run : t -> limit:int -> (int * int) option
(** [next_run t ~limit] is [Some (sector, count)] for the next
    contiguous run of dirty sectors (at most [limit] long), scanning
    circularly from where the previous call stopped; [None] when
    nothing is dirty. Does {e not} clear the run — the caller clears it
    once the copy has actually happened. *)
