(** Host-file persistence for simulated drives.

    [bulletd] keeps its drives in image files so the stored files survive
    daemon restarts: the image records the drive geometry followed by the
    raw sector contents. Saving and loading are host I/O and charge no
    virtual time. *)

val save : Block_device.t -> string -> unit
(** Write the drive (geometry + contents) to the named file, atomically
    (via a temporary file and rename). *)

val load : id:string -> clock:Amoeba_sim.Clock.t -> string -> (Block_device.t, string) result
(** Recreate a drive from an image file. *)

val load_or_create :
  id:string ->
  clock:Amoeba_sim.Clock.t ->
  geometry:Geometry.t ->
  string ->
  (Block_device.t * [ `Loaded | `Created ], string) result
(** Load the image if the file exists, otherwise a fresh zeroed drive of
    the given geometry. *)
