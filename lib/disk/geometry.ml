type t = {
  sector_bytes : int;
  sector_count : int;
  avg_seek_us : int;
  rotation_us : int;
  media_rate : int;
  controller_us : int;
}

let v1989_800mb =
  {
    sector_bytes = 512;
    sector_count = 1_638_400; (* 800 MiB *)
    avg_seek_us = 18_000;
    rotation_us = 16_667; (* 3600 RPM *)
    media_rate = 1_200_000;
    controller_us = 500;
  }

let small ~sectors = { v1989_800mb with sector_count = sectors }

let capacity_bytes g = g.sector_bytes * g.sector_count

let transfer_us g bytes = bytes * 1_000_000 / g.media_rate

let access_us g ~sequential ~write bytes =
  let positioning = if sequential then 0 else g.avg_seek_us + (g.rotation_us / 2) in
  let write_penalty = if write then g.rotation_us / 2 else 0 in
  g.controller_us + positioning + write_penalty + transfer_us g bytes

let sectors_for g bytes = (bytes + g.sector_bytes - 1) / g.sector_bytes
