type t = {
  device_id : string;
  geometry : Geometry.t;
  clock : Amoeba_sim.Clock.t;
  storage : Bytes.t;
  stats : Amoeba_sim.Stats.t;
  bad_sectors : (int, unit) Hashtbl.t;
  mutable head : int;
  mutable failed : bool;
  mutable fault_hook : (sector:int -> count:int -> write:bool -> bool) option;
  mutable tracer : Amoeba_trace.Trace.ctx option;
}

exception Failure of string

let create ~id ~geometry ~clock =
  {
    device_id = id;
    geometry;
    clock;
    storage = Bytes.make (Geometry.capacity_bytes geometry) '\000';
    stats = Amoeba_sim.Stats.create (Printf.sprintf "disk:%s" id);
    bad_sectors = Hashtbl.create 7;
    head = 0;
    failed = false;
    fault_hook = None;
    tracer = None;
  }

let id t = t.device_id

let geometry t = t.geometry

let clock t = t.clock

let capacity_bytes t = Geometry.capacity_bytes t.geometry

let check_range t ~sector ~count ~op =
  if count <= 0 || sector < 0 || sector + count > t.geometry.Geometry.sector_count then
    invalid_arg
      (Printf.sprintf "Block_device.%s: range [%d, %d) out of bounds on %s" op sector
         (sector + count) t.device_id)

let charge t ~sector ~count ~write =
  let sequential = sector = t.head in
  let bytes = count * t.geometry.Geometry.sector_bytes in
  (match t.tracer with
  | None -> Amoeba_sim.Clock.advance t.clock (Geometry.access_us t.geometry ~sequential ~write bytes)
  | Some tr ->
    (* Split the access charge into its mechanical components.  The three
       spans advance exactly [Geometry.access_us] in total, so traced and
       untraced runs tell identical time. *)
    let g = t.geometry in
    let seek_us = if sequential then 0 else g.Geometry.avg_seek_us in
    let rotate_us =
      (if sequential then 0 else g.Geometry.rotation_us / 2)
      + if write then g.Geometry.rotation_us / 2 else 0
    in
    let xfer_us = g.Geometry.controller_us + Geometry.transfer_us g bytes in
    if seek_us > 0 then begin
      Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.seek";
      Amoeba_sim.Clock.advance t.clock seek_us;
      Amoeba_trace.Trace.end_span tr
    end;
    if rotate_us > 0 then begin
      Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.rotate";
      Amoeba_sim.Clock.advance t.clock rotate_us;
      Amoeba_trace.Trace.end_span tr
    end;
    Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.xfer";
    Amoeba_sim.Clock.advance t.clock xfer_us;
    Amoeba_trace.Trace.end_span_attrs tr
      [
        ("drive", Amoeba_trace.Sink.S t.device_id);
        ("sector", Amoeba_trace.Sink.I sector);
        ("count", Amoeba_trace.Sink.I count);
        ("bytes", Amoeba_trace.Sink.I bytes);
        ("write", Amoeba_trace.Sink.I (if write then 1 else 0));
      ]);
  if not sequential then Amoeba_sim.Stats.incr t.stats "seeks";
  t.head <- sector + count

let check_health t ~sector ~count ~write ~op =
  if t.failed then raise (Failure (Printf.sprintf "%s: drive failed during %s" t.device_id op));
  for s = sector to sector + count - 1 do
    if Hashtbl.mem t.bad_sectors s then
      raise (Failure (Printf.sprintf "%s: bad sector %d during %s" t.device_id s op))
  done;
  match t.fault_hook with
  | Some hook when hook ~sector ~count ~write ->
    (* A transient media error: this access fails, the next may succeed.
       The drive still burned the access time before reporting it. *)
    Amoeba_sim.Stats.incr t.stats "transient_errors";
    (match t.tracer with
    | None -> ()
    | Some tr ->
      Amoeba_trace.Trace.event tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.transient_error"
        [ ("drive", Amoeba_trace.Sink.S t.device_id); ("sector", Amoeba_trace.Sink.I sector) ]);
    charge t ~sector ~count ~write;
    raise (Failure (Printf.sprintf "%s: transient error at sector %d during %s" t.device_id sector op))
  | _ -> ()

let read t ~sector ~count =
  check_range t ~sector ~count ~op:"read";
  check_health t ~sector ~count ~write:false ~op:"read";
  (match t.tracer with
  | None -> ()
  | Some tr -> Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.read");
  charge t ~sector ~count ~write:false;
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.end_span_attrs tr
      [ ("drive", Amoeba_trace.Sink.S t.device_id); ("sectors", Amoeba_trace.Sink.I count) ]);
  Amoeba_sim.Stats.incr t.stats "reads";
  Amoeba_sim.Stats.add t.stats "sectors_read" count;
  let sector_bytes = t.geometry.Geometry.sector_bytes in
  Bytes.sub t.storage (sector * sector_bytes) (count * sector_bytes)

let write t ~sector data =
  let sector_bytes = t.geometry.Geometry.sector_bytes in
  let len = Bytes.length data in
  if len = 0 || len mod sector_bytes <> 0 then
    invalid_arg "Block_device.write: data must be a positive multiple of the sector size";
  let count = len / sector_bytes in
  check_range t ~sector ~count ~op:"write";
  check_health t ~sector ~count ~write:true ~op:"write";
  (match t.tracer with
  | None -> ()
  | Some tr -> Amoeba_trace.Trace.begin_span tr ~layer:Amoeba_trace.Sink.Disk ~name:"disk.write");
  charge t ~sector ~count ~write:true;
  (match t.tracer with
  | None -> ()
  | Some tr ->
    Amoeba_trace.Trace.end_span_attrs tr
      [ ("drive", Amoeba_trace.Sink.S t.device_id); ("sectors", Amoeba_trace.Sink.I count) ]);
  Amoeba_sim.Stats.incr t.stats "writes";
  Amoeba_sim.Stats.add t.stats "sectors_written" count;
  Bytes.blit data 0 t.storage (sector * sector_bytes) len

let fail t = t.failed <- true

let repair t = t.failed <- false

let is_failed t = t.failed

let set_fault_hook t hook = t.fault_hook <- hook

let set_tracer t tracer = t.tracer <- tracer

let set_bad_sector t sector = Hashtbl.replace t.bad_sectors sector ()

let clear_bad_sector t sector = Hashtbl.remove t.bad_sectors sector

let copy_from ~src ~dst =
  if capacity_bytes src <> capacity_bytes dst then
    invalid_arg "Block_device.copy_from: drives differ in capacity";
  if src.failed then raise (Failure (src.device_id ^ ": drive failed during copy"));
  if dst.failed then raise (Failure (dst.device_id ^ ": drive failed during copy"));
  let bytes = capacity_bytes src in
  (* One sequential pass over each drive: the reads and writes overlap in
     practice, so charge the slower of the two plus one seek each. *)
  let pass g ~write = Geometry.access_us g ~sequential:false ~write bytes in
  Amoeba_sim.Clock.advance src.clock
    (max (pass src.geometry ~write:false) (pass dst.geometry ~write:true));
  Bytes.blit src.storage 0 dst.storage 0 bytes;
  Amoeba_sim.Stats.incr src.stats "full_copies_out";
  Amoeba_sim.Stats.incr dst.stats "full_copies_in";
  src.head <- 0;
  dst.head <- 0

let stats t = t.stats

let peek t ~sector ~count =
  check_range t ~sector ~count ~op:"peek";
  let sector_bytes = t.geometry.Geometry.sector_bytes in
  Bytes.sub t.storage (sector * sector_bytes) (count * sector_bytes)

let poke t ~sector data =
  let sector_bytes = t.geometry.Geometry.sector_bytes in
  let len = Bytes.length data in
  if len = 0 || len mod sector_bytes <> 0 then
    invalid_arg "Block_device.poke: data must be a positive multiple of the sector size";
  check_range t ~sector ~count:(len / sector_bytes) ~op:"poke";
  Bytes.blit data 0 t.storage (sector * sector_bytes) len
