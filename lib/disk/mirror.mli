(** A set of identical replica drives.

    The Bullet server keeps N identical disks (the paper's configuration
    has two): reads go to the primary (first live drive), writes go to all
    live drives. The caller's P-FACTOR chooses how many replica writes are
    on the critical path — the rest complete in the background
    ({!Amoeba_sim.Clock.unobserved}), matching the paper's semantics where
    [BULLET.CREATE] replies once N disks hold the file but the server
    writes through to every disk regardless.

    Beyond the paper's stop-the-world recovery ({!recover}), the mirror
    supports {e online resync}: each drive carries a dirty-sector map
    ({!Dirty}), a failed drive can {!rejoin} fully dirty, and a scheduler
    drains the backlog in bounded batches ({!resync_step}) interleaved
    with foreground I/O. Foreground reads that hit a still-dirty range on
    a resyncing drive fall through to a clean replica and read-repair the
    range off the measured path, so serving traffic shrinks the backlog
    instead of waiting behind it. *)

type t

type sync_state =
  | Clean  (** every drive online and fully current *)
  | Degraded  (** at least one drive offline *)
  | Resyncing of { sectors_remaining : int }
      (** all drives online, at least one still catching up *)

exception No_live_drive
(** Raised when every drive in the set has failed. *)

val create : Block_device.t list -> t
(** A replica set over the given drives (all must share a geometry).
    Raises [Invalid_argument] on an empty list or mismatched
    geometries. *)

val drives : t -> Block_device.t list

val geometry : t -> Geometry.t

val live_count : t -> int
(** Number of drives currently online. *)

val primary : t -> Block_device.t
(** The first live drive — the one reads are served from.
    Raises {!No_live_drive}. *)

val sync_state : t -> sync_state

val sync_state_label : t -> string
(** ["clean"], ["degraded"] or ["resyncing:<sectors-remaining>"] — for
    reports and dumps. *)

val read : t -> sector:int -> count:int -> bytes
(** Read from the first live drive holding current bytes for the range.
    If the primary fails mid-read the next live drive is tried — the
    paper's "if the main disk fails, the file server can proceed
    uninterruptedly by using the other disk". A resyncing drive whose
    copy of the range is still dirty is skipped the same way, and once a
    good source has answered the data is written back to it off the
    measured path (read-repair), clearing the range. *)

val write : t -> sync:int -> sector:int -> bytes -> unit
(** [write t ~sync ~sector data] writes to every live drive. The [sync]
    first writes (clamped to the live count) proceed in parallel on the
    critical path; the remainder are {e pending} — they are applied (off
    the measured path) before the next mirror operation, which models
    write-behind completing shortly after the reply. [sync = 0] therefore
    returns in zero disk time, and a {!crash} before the writes drain
    loses them — the paper's P-FACTOR 0 risk. Writes aimed at an offline
    drive mark the range dirty on it instead, so a later {!rejoin} knows
    what to copy. A write landing on a resyncing drive clears its range.
    Raises {!No_live_drive} if no drive is live. *)

val drain : t -> unit
(** Apply all pending background writes now (off the measured path).
    Pending writes aimed at a failed drive are discarded (and the range
    marked dirty on it). *)

val crash : t -> unit
(** Discard all pending background writes, as a server crash would. The
    drives themselves keep whatever was synchronously written. *)

val pending_count : t -> int

val recover : t -> unit
(** Repair every failed drive and copy the primary's contents onto it —
    the paper's whole-disk-copy recovery. Leaves the repaired drives
    clean. Raises {!No_live_drive} if there is no live drive to copy
    from. *)

val rejoin : t -> unit
(** Bring every failed drive back online {e without} copying anything:
    the drive is repaired, marked fully dirty (nothing it holds is
    trusted) and enters the resyncing state. The backlog then drains via
    {!resync_step}, foreground writes and read-repair. A no-op for
    drives already online. *)

val resync_step : ?batch:int -> t -> int
(** Copy at most [batch] (default 256) contiguous dirty sectors from a
    clean live replica onto the first resyncing drive, charging the read
    and the write to the clock — this is the bounded slice of disk time
    a resync step steals from foreground I/O. Returns the number of
    sectors copied; [0] means there was nothing to do (no drive
    resyncing, nothing dirty, or no clean source available). Scans
    circularly, so repeated calls with foreground writes racing the scan
    still terminate. When a drive's backlog reaches zero it flips to
    clean ([resyncs_completed] stat, [mirror.resync_done] event). *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install the tracer on the mirror and all its drives.  Traced reads
    and writes get [mirror.read]/[mirror.write] spans with the drives'
    spans nested inside, plus [mirror.failover]/[mirror.degraded]
    events. Resync steps get a [disk.resync] span (drive, sector, count,
    remaining) and rejoin/read-repair/completion get
    [mirror.rejoin]/[mirror.read_repair]/[mirror.resync_done] events. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [read_failovers] (a drive raised mid-read and the next live
    drive served it), [degraded_reads] (reads issued while at least one
    drive was offline), [resyncs] (failed drives repaired and re-copied by
    {!recover}), [rejoins], [resync_steps], [resync_sectors],
    [resync_fallthroughs] (reads that skipped a still-dirty resyncing
    drive), [read_repairs], [resyncs_completed]. *)

val register_metrics : t -> Amoeba_metrics.Metrics.t -> unit
(** Register this mirror's live surface: [mirror.sync_state] (0 clean,
    1 degraded, 2 resyncing), [mirror.sectors_remaining] (the resync
    backlog: dirty sectors on syncing drives, full capacity for offline
    drives — a rejoin starts fully dirty), [mirror.live_drives],
    [mirror.pending_writes], and every {!stats} counter under the
    [mirror.] prefix. *)
