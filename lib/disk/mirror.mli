(** A set of identical replica drives.

    The Bullet server keeps N identical disks (the paper's configuration
    has two): reads go to the primary (first live drive), writes go to all
    live drives. The caller's P-FACTOR chooses how many replica writes are
    on the critical path — the rest complete in the background
    ({!Amoeba_sim.Clock.unobserved}), matching the paper's semantics where
    [BULLET.CREATE] replies once N disks hold the file but the server
    writes through to every disk regardless. *)

type t

exception No_live_drive
(** Raised when every drive in the set has failed. *)

val create : Block_device.t list -> t
(** A replica set over the given drives (all must share a geometry).
    Raises [Invalid_argument] on an empty list or mismatched
    geometries. *)

val drives : t -> Block_device.t list

val geometry : t -> Geometry.t

val live_count : t -> int
(** Number of drives currently online. *)

val primary : t -> Block_device.t
(** The first live drive — the one reads are served from.
    Raises {!No_live_drive}. *)

val read : t -> sector:int -> count:int -> bytes
(** Read from the primary. If the primary fails mid-read the next live
    drive is tried — the paper's "if the main disk fails, the file server
    can proceed uninterruptedly by using the other disk". *)

val write : t -> sync:int -> sector:int -> bytes -> unit
(** [write t ~sync ~sector data] writes to every live drive. The [sync]
    first writes (clamped to the live count) proceed in parallel on the
    critical path; the remainder are {e pending} — they are applied (off
    the measured path) before the next mirror operation, which models
    write-behind completing shortly after the reply. [sync = 0] therefore
    returns in zero disk time, and a {!crash} before the writes drain
    loses them — the paper's P-FACTOR 0 risk. Raises {!No_live_drive} if
    no drive is live. *)

val drain : t -> unit
(** Apply all pending background writes now (off the measured path).
    Pending writes aimed at a failed drive are discarded. *)

val crash : t -> unit
(** Discard all pending background writes, as a server crash would. The
    drives themselves keep whatever was synchronously written. *)

val pending_count : t -> int

val recover : t -> unit
(** Repair every failed drive and copy the primary's contents onto it —
    the paper's whole-disk-copy recovery. Raises {!No_live_drive} if there
    is no live drive to copy from. *)

val set_tracer : t -> Amoeba_trace.Trace.ctx option -> unit
(** Install the tracer on the mirror and all its drives.  Traced reads
    and writes get [mirror.read]/[mirror.write] spans with the drives'
    spans nested inside, plus [mirror.failover]/[mirror.degraded]
    events. *)

val stats : t -> Amoeba_sim.Stats.t
(** Counters: [read_failovers] (a drive raised mid-read and the next live
    drive served it), [degraded_reads] (reads issued while at least one
    drive was offline), [resyncs] (failed drives repaired and re-copied by
    {!recover}). *)
