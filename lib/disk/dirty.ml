type t = {
  bits : Bytes.t; (* one bit per sector *)
  sectors : int;
  mutable remaining : int;
  mutable cursor : int; (* where the resync scan resumes *)
}

let create ~sectors =
  if sectors <= 0 then invalid_arg "Dirty.create: sectors must be positive";
  { bits = Bytes.make ((sectors + 7) / 8) '\000'; sectors; remaining = 0; cursor = 0 }

let sectors t = t.sectors

let remaining t = t.remaining

let check_range t ~sector ~count ~op =
  if count <= 0 || sector < 0 || sector + count > t.sectors then
    invalid_arg
      (Printf.sprintf "Dirty.%s: range [%d, %d) out of bounds (%d sectors)" op sector
         (sector + count) t.sectors)

let get t s = Char.code (Bytes.get t.bits (s lsr 3)) land (1 lsl (s land 7)) <> 0

let set t s v =
  let i = s lsr 3 in
  let mask = 1 lsl (s land 7) in
  let b = Char.code (Bytes.get t.bits i) in
  Bytes.set t.bits i (Char.chr (if v then b lor mask else b land lnot mask))

let mark t ~sector ~count =
  check_range t ~sector ~count ~op:"mark";
  for s = sector to sector + count - 1 do
    if not (get t s) then begin
      set t s true;
      t.remaining <- t.remaining + 1
    end
  done

let mark_all t = mark t ~sector:0 ~count:t.sectors

let clear t ~sector ~count =
  check_range t ~sector ~count ~op:"clear";
  for s = sector to sector + count - 1 do
    if get t s then begin
      set t s false;
      t.remaining <- t.remaining - 1
    end
  done

let is_dirty t ~sector ~count =
  check_range t ~sector ~count ~op:"is_dirty";
  let rec scan s = s < sector + count && (get t s || scan (s + 1)) in
  scan sector

(* The next run of dirty sectors, at most [limit] long, scanning
   circularly from the cursor: contiguity keeps the resync reads mostly
   sequential, and the wrap means foreground write traffic behind the
   scan cannot starve the sectors ahead of it. *)
let next_run t ~limit =
  if limit <= 0 then invalid_arg "Dirty.next_run: limit must be positive";
  if t.remaining = 0 then None
  else begin
    let rec find s steps =
      if steps >= t.sectors then None
      else
        let s = if s >= t.sectors then 0 else s in
        if get t s then Some s else find (s + 1) (steps + 1)
    in
    match find t.cursor 0 with
    | None -> None
    | Some start ->
      let stop = min t.sectors (start + limit) in
      let rec extend s = if s < stop && get t s then extend (s + 1) else s in
      let stop = extend start in
      t.cursor <- (if stop >= t.sectors then 0 else stop);
      Some (start, stop - start)
  end
