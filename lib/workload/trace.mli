(** Synthetic operation traces.

    The paper justifies whole-file transfer with the BSD trace study it
    cites: "most files (about 75%) are accessed in entirety". This
    generator produces an operation stream over a working set of files
    with that shape: whole-file reads dominate, followed by whole-file
    (re)writes — which under the immutable model become create+replace —
    plus small in-place updates and deletions. Consumers interpret the
    abstract ops against whichever server they benchmark. *)

type op =
  | Create of { size : int }
  | Read_whole of { victim : int }  (** index into currently-live files *)
  | Read_part of { victim : int; frac_pos : float; len : int }
  | Rewrite of { victim : int; size : int }  (** whole-file replacement *)
  | Update of { victim : int; frac_pos : float; len : int }  (** small in-place delta *)
  | Delete of { victim : int }

type mix = {
  p_read_whole : float;
  p_read_part : float;
  p_rewrite : float;
  p_update : float;
  p_delete : float;  (** remainder after the others is Create *)
}

val bsd_mix : mix
(** ~60% whole reads, ~15% partial reads (75% of accesses are whole-file
    as in the cited trace study), ~10% rewrites, ~5% small updates,
    ~4% deletes, rest creates. *)

val generate :
  ?mix:mix -> prng:Amoeba_sim.Prng.t -> warmup_files:int -> ops:int -> unit -> op list
(** A trace beginning with [warmup_files] creates, then [ops] operations
    drawn from the mix. Victim indices are guaranteed valid if the
    consumer replaces deleted slots (interpret [Delete] as
    delete-then-forget, [Create] as append-to-set); the generator tracks
    the live count symbolically. When the set is empty the op falls back
    to Create. *)
