type op =
  | Create of { size : int }
  | Read_whole of { victim : int }
  | Read_part of { victim : int; frac_pos : float; len : int }
  | Rewrite of { victim : int; size : int }
  | Update of { victim : int; frac_pos : float; len : int }
  | Delete of { victim : int }

type mix = {
  p_read_whole : float;
  p_read_part : float;
  p_rewrite : float;
  p_update : float;
  p_delete : float;
}

let bsd_mix =
  { p_read_whole = 0.60; p_read_part = 0.15; p_rewrite = 0.10; p_update = 0.05; p_delete = 0.04 }

let generate ?(mix = bsd_mix) ~prng ~warmup_files ~ops () =
  let live = ref 0 in
  let create () =
    incr live;
    Create { size = Sizes.sample prng }
  in
  let victim () = Amoeba_sim.Prng.int prng !live in
  let small_len () = 16 + Amoeba_sim.Prng.int prng 496 in
  let pick () =
    if !live = 0 then create ()
    else begin
      let u = Amoeba_sim.Prng.float prng 1.0 in
      let thresholds =
        [
          (mix.p_read_whole, `Read_whole);
          (mix.p_read_part, `Read_part);
          (mix.p_rewrite, `Rewrite);
          (mix.p_update, `Update);
          (mix.p_delete, `Delete);
        ]
      in
      let rec classify acc = function
        | [] -> `Create
        | (p, tag) :: rest -> if u < acc +. p then tag else classify (acc +. p) rest
      in
      match classify 0.0 thresholds with
      | `Read_whole -> Read_whole { victim = victim () }
      | `Read_part ->
        Read_part
          { victim = victim (); frac_pos = Amoeba_sim.Prng.float prng 1.0; len = small_len () }
      | `Rewrite -> Rewrite { victim = victim (); size = Sizes.sample prng }
      | `Update ->
        Update { victim = victim (); frac_pos = Amoeba_sim.Prng.float prng 1.0; len = small_len () }
      | `Delete ->
        let v = victim () in
        decr live;
        Delete { victim = v }
      | `Create -> create ()
    end
  in
  (* explicit recursion: [create] is stateful, evaluation order matters *)
  let rec make_warmup n = if n = 0 then [] else let c = create () in c :: make_warmup (n - 1) in
  let warmup = make_warmup warmup_files in
  let rec body n acc = if n = 0 then List.rev acc else body (n - 1) (pick () :: acc) in
  warmup @ body ops []
