(** File-size distributions.

    The paper's motivation rests on the 1984 "Immediate Files"
    measurements it cites: "the median file size in a UNIX system is
    1 Kbyte and 99% of all files are less than 64 Kbytes". {!sample}
    draws from a piecewise log-uniform distribution fitted to those
    quantiles. *)

val paper_sweep : int list
(** The six file sizes of the paper's Fig. 2/Fig. 3 rows:
    1 B, 16 B, 256 B, 4 KB, 64 KB, 1 MB (the numeric row labels in the
    surviving scan are partially illegible; these reconstruct the
    1-byte … 1-Mbyte span named in the prose). *)

val sample : Amoeba_sim.Prng.t -> int
(** One file size from the 1984 UNIX distribution (median ≈1 KB,
    99th percentile ≈64 KB, max 1 MB). *)

val quantiles : (float * int) list
(** The fitted CDF knots [(probability, size_bytes)]. *)

val describe : int -> string
(** Human-readable size, e.g. ["64 KB"]. *)
