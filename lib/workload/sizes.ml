let paper_sweep = [ 1; 16; 256; 4096; 65536; 1048576 ]

(* CDF knots fitted to Mullender & Tanenbaum (1984): median 1 KB, 99% of
   files under 64 KB. *)
let quantiles =
  [
    (0.00, 64);
    (0.20, 256);
    (0.50, 1_024);
    (0.75, 4_096);
    (0.90, 16_384);
    (0.99, 65_536);
    (1.00, 1_048_576);
  ]

let sample prng =
  let u = Amoeba_sim.Prng.float prng 1.0 in
  let interpolate (p_lo, s_lo) (p_hi, s_hi) =
    (* log-uniform interpolation between the knots *)
    let frac = if p_hi = p_lo then 0. else (u -. p_lo) /. (p_hi -. p_lo) in
    let log_size =
      log (float_of_int s_lo) +. (frac *. (log (float_of_int s_hi) -. log (float_of_int s_lo)))
    in
    max 1 (int_of_float (exp log_size))
  in
  let rec locate = function
    | lo :: (hi :: rest_after) ->
      let p_hi = fst hi in
      if u <= p_hi || rest_after = [] then interpolate lo hi else locate (hi :: rest_after)
    | [ _ ] | [] -> 1_024
  in
  locate quantiles

let describe n =
  if n >= 1_048_576 && n mod 1_048_576 = 0 then Printf.sprintf "%d MB" (n / 1_048_576)
  else if n >= 1_024 && n mod 1_024 = 0 then Printf.sprintf "%d KB" (n / 1_024)
  else Printf.sprintf "%d B" n
