(** Wide-area link models — re-export of {!Amoeba_rpc.Link}.

    The type itself lives in the RPC layer so that fault plans
    ([Amoeba_fault.Plan]'s [Link_loss] / [Link_partition] events) can
    name a link class without depending on the federation code; this
    module keeps the historical [Amoeba_wan.Link] path working. *)

type t = Amoeba_rpc.Link.t =
  | Local  (** same 10 Mbit/s Ethernet segment *)
  | Regional  (** LAN–gateway–LAN within a metro area (VU ↔ CWI) *)
  | Wide  (** international leased line, 64 kbit/s class *)

val model : t -> Amoeba_rpc.Net_model.t
(** The wire-cost model for one RPC across the link. [Local] is
    {!Amoeba_rpc.Net_model.amoeba}. *)

val classify : same_site:bool -> same_region:bool -> t

val to_string : t -> string

val of_string : string -> t option
