(** Wide-area link models.

    Amoeba in 1989 ran "in four different countries (The Netherlands,
    England, Norway, and Germany)" behind gateways (paper §2.1, the
    MANDIS project). RPC cost depends on where the two parties sit:
    same Ethernet, same region (two LANs bridged by a gateway), or an
    international leased line. *)

type t =
  | Local  (** same 10 Mbit/s Ethernet segment *)
  | Regional  (** LAN–gateway–LAN within a metro area (VU ↔ CWI) *)
  | Wide  (** international leased line, 64 kbit/s class *)

val model : t -> Amoeba_rpc.Net_model.t
(** The wire-cost model for one RPC across the link. [Local] is
    {!Amoeba_rpc.Net_model.amoeba}. *)

val classify : same_site:bool -> same_region:bool -> t

val to_string : t -> string
