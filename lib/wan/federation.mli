(** A federation of Bullet servers behind one global name space.

    The paper (§2.1): "The directory service provides a single global
    naming space for objects. This has allowed us to link multiple
    Bullet file servers together providing one single large file service
    that crosses international borders."

    A federation hosts one Bullet server per {e site}; sites belong to
    {e regions}, and RPC between two parties is charged at the
    {!Link.t} their placement implies. A published file may be
    replicated at several sites: its name binds to a {e replica
    descriptor} (itself a Bullet file at the home site) listing the
    replica capabilities, and a reader fetches from the closest replica.
    Immutability is what makes this easy — replicas can never diverge,
    exactly the paper's argument that the version mechanism has
    "positive influences ... on replication". *)

type t

type site = string

exception Unknown_site of site

val create :
  ?home_region:string -> ?site_sectors:int -> ?attempts:int -> ?backoff_us:int -> unit -> t
(** A federation with a fresh virtual clock and a home site ("home", in
    [home_region], default ["nl"]) hosting the directory service. Each
    site's mirrored drives have [site_sectors] sectors (default 32768 =
    16 MB). [attempts]/[backoff_us] set the retry policy of every Bullet
    client the federation makes (default 1 attempt, i.e. no retries) —
    raise [attempts] to let cross-site transfers ride out link-loss
    fault plans. *)

val clock : t -> Amoeba_sim.Clock.t

val transport : t -> Amoeba_rpc.Transport.t
(** The shared transport — where a fault injector attaches. Every
    cross-site transaction is tagged with the {!Link.t} between the two
    parties, so link-scoped plan events apply to exactly the traffic
    that rides that class of line. *)

val home : t -> site

val add_site : t -> name:site -> region:string -> unit
(** Bring up a Bullet server (two mirrored drives) at a new site.
    Raises [Invalid_argument] if the name is taken. *)

val sites : t -> site list

val link_between : t -> site -> site -> Link.t

(** {2 Replica descriptors and routing}

    The descriptor codec and the replica-ranking policy are exposed so
    other placement layers (notably [Amoeba_cluster]) can reuse the
    exact same wire form and the exact same "closest, then least
    loaded" decision — a cluster router is a federation reader whose
    load hints come from live {!Amoeba_metrics.Metrics} snapshots. *)

val encode_descriptor : (site * Amoeba_cap.Capability.t) list -> bytes
(** The replica-descriptor wire form: a count byte, then per replica a
    length-prefixed site name and the capability bytes. *)

val decode_descriptor : bytes -> (site * Amoeba_cap.Capability.t) list
(** Inverse of {!encode_descriptor}. *)

val rank_replicas :
  ?load:(site -> int) -> link_to:(site -> Link.t) -> (site * 'a) list -> (site * 'a) list
(** Candidates ordered best-first: ascending link class ([Local] <
    [Regional] < [Wide]) under [link_to], then ascending [load] hint
    (default: none — pure link distance), then site name, so equal
    candidates break identically everywhere. *)

val pick_replica : ?load:(site -> int) -> link_to:(site -> Link.t) -> (site * 'a) list -> site * 'a
(** Head of {!rank_replicas}. Raises [Failure] on an empty list. *)

val publish :
  t -> from:site -> name:string -> ?replicate_to:site list -> bytes -> Amoeba_cap.Capability.t
(** Create the file at [from]'s Bullet server, copy it to each extra
    site (each copy crosses the corresponding link), write the replica
    descriptor, and bind [name] in the global directory. Returns the
    descriptor capability. Raises {!Unknown_site} and
    {!Amoeba_rpc.Status.Error}. *)

val fetch : t -> from:site -> string -> bytes * site
(** Resolve [name] from site [from]: one directory lookup (charged at
    the link to the home site), read the descriptor, then read the
    {e closest} replica. Returns the contents and the site that served
    them. *)

val fetch_from_replica : t -> from:site -> string -> replica:site -> bytes
(** Force the read to a specific replica site (for experiments). *)

val replica_sites : t -> string -> site list
(** Where a published name is currently stored. *)

val unpublish : t -> string -> unit
(** Remove the binding and delete every replica and the descriptor. *)

val bullet_port : t -> site -> Amoeba_cap.Port.t
(** The Bullet service port at a site. *)
