include Amoeba_rpc.Link
