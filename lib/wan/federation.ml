module Clock = Amoeba_sim.Clock
module Server = Bullet_core.Server
module Client = Bullet_core.Client
module Dir = Amoeba_dir.Dir_server
module Dir_client = Amoeba_dir.Dir_client
module Cap = Amoeba_cap.Capability
module Status = Amoeba_rpc.Status

type site = string

exception Unknown_site of site

type site_info = { region : string; server : Server.t }

type t = {
  clock : Clock.t;
  transport : Amoeba_rpc.Transport.t;
  sites : (site, site_info) Hashtbl.t;
  dir : Dir.t;
  home_site : site;
  site_sectors : int;
  attempts : int;
  backoff_us : int;
}

let clock t = t.clock

let transport t = t.transport

let home t = t.home_site

let site_info t name =
  match Hashtbl.find_opt t.sites name with
  | Some info -> info
  | None -> raise (Unknown_site name)

let link_between t a b =
  let ia = site_info t a and ib = site_info t b in
  Link.classify ~same_site:(a = b) ~same_region:(ia.region = ib.region)

(* A Bullet client from one site to another site's server, charged at
   the link between them, and tagged with that link so a fault plan can
   target the line itself. *)
let bullet_client t ~from ~at =
  let info = site_info t at in
  let link = link_between t from at in
  Client.connect ~model:(Link.model link) ~link ~attempts:t.attempts ~backoff_us:t.backoff_us
    t.transport (Server.port info.server)

let dir_client t ~from =
  let link = link_between t from t.home_site in
  Dir_client.connect ~model:(Link.model link) ~link t.transport (Dir.port t.dir)

let boot_site ~clock ~transport ~sites ~sectors ~name ~region =
  if Hashtbl.mem sites name then invalid_arg (Printf.sprintf "Federation: site %s exists" name);
  let geometry = Amoeba_disk.Geometry.small ~sectors in
  let d1 = Amoeba_disk.Block_device.create ~id:(name ^ "-1") ~geometry ~clock in
  let d2 = Amoeba_disk.Block_device.create ~id:(name ^ "-2") ~geometry ~clock in
  let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
  Server.format mirror ~max_files:1024;
  (* FNV-1a over the site name: stable across compiler versions, unlike
     Hashtbl.hash, so a federation built from the same site names always
     mints the same capabilities. *)
  let seed = Amoeba_sim.Prng.seed_of_string name in
  let server, _report = Result.get_ok (Server.start ~seed mirror) in
  Bullet_core.Proto.serve server transport;
  Hashtbl.replace sites name { region; server }

let create ?(home_region = "nl") ?(site_sectors = 32_768) ?(attempts = 1) ?(backoff_us = 50_000)
    () =
  let clock = Clock.create () in
  let transport = Amoeba_rpc.Transport.create ~clock in
  let sites = Hashtbl.create 8 in
  (* boot the home site first, then the directory service on top of it *)
  boot_site ~clock ~transport ~sites ~sectors:site_sectors ~name:"home" ~region:home_region;
  let home_bullet = Client.connect transport (Server.port (Hashtbl.find sites "home").server) in
  let dir = Dir.create ~store:home_bullet () in
  Amoeba_dir.Dir_proto.serve dir transport;
  { clock; transport; sites; dir; home_site = "home"; site_sectors; attempts; backoff_us }

let add_site t ~name ~region =
  boot_site ~clock:t.clock ~transport:t.transport ~sites:t.sites ~sectors:t.site_sectors ~name
    ~region

let sites t = Amoeba_sim.Tbl.sorted_keys String.compare t.sites

let bullet_port t site = Server.port (site_info t site).server

(* ---- replica descriptors ---- *)

let encode_descriptor replicas =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (List.length replicas));
  let add (site, cap) =
    Buffer.add_char buf (Char.chr (String.length site));
    Buffer.add_string buf site;
    Buffer.add_bytes buf (Cap.to_bytes cap)
  in
  List.iter add replicas;
  Buffer.to_bytes buf

let decode_descriptor data =
  let count = Char.code (Bytes.get data 0) in
  let pos = ref 1 in
  let read_one () =
    let len = Char.code (Bytes.get data !pos) in
    let site = Bytes.sub_string data (!pos + 1) len in
    let cap = Cap.read data (!pos + 1 + len) in
    pos := !pos + 1 + len + Cap.wire_size;
    (site, cap)
  in
  let rec go n = if n = 0 then [] else let r = read_one () in r :: go (n - 1) in
  go count

(* ---- operations ---- *)

let publish t ~from ~name ?(replicate_to = []) data =
  let (_ : site_info) = site_info t from in
  (* primary copy at the publisher's site *)
  let primary = Client.create (bullet_client t ~from ~at:from) data in
  (* extra replicas: the contents cross the link to each remote server *)
  let replicate at =
    if at = from then None
    else begin
      let (_ : site_info) = site_info t at in
      Some (at, Client.create (bullet_client t ~from ~at) data)
    end
  in
  let replicas = (from, primary) :: List.filter_map replicate replicate_to in
  (* the descriptor lives at the home site, named in the global space *)
  let descriptor_cap =
    Client.create (bullet_client t ~from ~at:t.home_site) (encode_descriptor replicas)
  in
  let dirs = dir_client t ~from in
  let root = Dir_client.get_root dirs in
  (match Dir_client.replace dirs root name descriptor_cap with
  | Some old -> (
    (* the name was rebound; drop the old descriptor (its replicas are
       the old version's problem - immutable files stay valid) *)
    try Client.delete (bullet_client t ~from:t.home_site ~at:t.home_site) old
    with Status.Error _ -> ())
  | None -> ());
  descriptor_cap

let descriptor_of t ~from name =
  let dirs = dir_client t ~from in
  let root = Dir_client.get_root dirs in
  let descriptor_cap = Dir_client.lookup dirs root name in
  let raw = Client.read (bullet_client t ~from ~at:t.home_site) descriptor_cap in
  (descriptor_cap, decode_descriptor raw)

(* Generic replica ranking: closest link class first, then the live
   load hint, then the site name so equal candidates break the same way
   everywhere. [load] defaults to "no hint" — pure link distance. *)
let rank_replicas ?(load = fun (_ : site) -> 0) ~link_to replicas =
  let weight (site, _) =
    let cls = match link_to site with Link.Local -> 0 | Link.Regional -> 1 | Link.Wide -> 2 in
    (cls, load site, site)
  in
  let cmp a b =
    let ca, la, sa = weight a and cb, lb, sb = weight b in
    match Int.compare ca cb with
    | 0 -> ( match Int.compare la lb with 0 -> String.compare sa sb | c -> c)
    | c -> c
  in
  List.sort cmp replicas

let pick_replica ?load ~link_to replicas =
  match rank_replicas ?load ~link_to replicas with
  | best :: _ -> best
  | [] -> failwith "empty replica descriptor"

let pick_closest t ~from replicas =
  pick_replica ~link_to:(fun site -> link_between t from site) replicas

let fetch t ~from name =
  let _desc, replicas = descriptor_of t ~from name in
  let site, cap = pick_closest t ~from replicas in
  (Client.read (bullet_client t ~from ~at:site) cap, site)

let fetch_from_replica t ~from name ~replica =
  let _desc, replicas = descriptor_of t ~from name in
  match List.assoc_opt replica replicas with
  | None -> raise (Unknown_site replica)
  | Some cap -> Client.read (bullet_client t ~from ~at:replica) cap

let replica_sites t name =
  let _desc, replicas = descriptor_of t ~from:t.home_site name in
  List.map fst replicas

let unpublish t name =
  let descriptor_cap, replicas = descriptor_of t ~from:t.home_site name in
  let delete_replica (site, cap) =
    try Client.delete (bullet_client t ~from:t.home_site ~at:site) cap with Status.Error _ -> ()
  in
  List.iter delete_replica replicas;
  (try Client.delete (bullet_client t ~from:t.home_site ~at:t.home_site) descriptor_cap
   with Status.Error _ -> ());
  let dirs = dir_client t ~from:t.home_site in
  Dir_client.remove_name dirs (Dir_client.get_root dirs) name
