(* The paper's evaluation harness: regenerates every table and figure of
   "The Design of a High-Performance File Server" (ICDCS 1989), plus the
   ablations DESIGN.md calls out and Bechamel microbenchmarks of the real
   code.

   Usage:  dune exec bench/main.exe            (everything)
           dune exec bench/main.exe -- fig2 compare micro   (a subset) *)

module E = Experiments

let ms us = float_of_int us /. 1000.

let line () = print_endline (String.make 72 '-')

let header title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

let size_label n = Workload.Sizes.describe n

(* ---- Fig. 2: the Bullet server ---- *)

let fig2 () =
  header "FIG2 - Bullet file server: READ and CREATE+DELETE (paper Fig. 2)";
  let rows = E.fig2_bullet () in
  Printf.printf "(a) Delay (msec)\n";
  Printf.printf "  %-10s %12s %12s\n" "File Size" "READ" "CREATE+DEL";
  List.iter
    (fun (r : E.row) ->
      Printf.printf "  %-10s %12.2f %12.2f\n" (size_label r.E.size) (ms r.E.read_us) (ms r.E.write_us))
    rows;
  Printf.printf "\n(b) Bandwidth (Kbytes/sec)\n";
  Printf.printf "  %-10s %12s %12s\n" "File Size" "READ" "CREATE+DEL";
  List.iter
    (fun (r : E.row) ->
      Printf.printf "  %-10s %12.1f %12.1f\n" (size_label r.E.size)
        (E.bandwidth_kbs ~size:r.E.size ~us:r.E.read_us)
        (E.bandwidth_kbs ~size:r.E.size ~us:r.E.write_us))
    rows

(* ---- ATTRIB: Fig. 2 rows with per-layer time attribution ---- *)

let attrib () =
  header "ATTRIB - Fig. 2 rows with per-layer time attribution (trace spans)";
  let rows = E.fig2_attrib () in
  let pct part total = if total = 0 then 0. else 100. *. float_of_int part /. float_of_int total in
  let table title pick =
    Printf.printf "%s\n" title;
    Printf.printf "  %-10s %10s %7s %7s %7s %7s %7s\n" "File Size" "total ms" "net%" "cpu%"
      "cache%" "disk%" "other%";
    List.iter
      (fun (r : E.attrib_row) ->
        let b : E.attrib_breakdown = pick r in
        Printf.printf "  %-10s %10.2f %7.1f %7.1f %7.1f %7.1f %7.1f\n" (size_label r.E.at_size)
          (ms b.E.at_total_us) (pct b.E.at_net_us b.E.at_total_us)
          (pct b.E.at_cpu_us b.E.at_total_us) (pct b.E.at_cache_us b.E.at_total_us)
          (pct b.E.at_disk_us b.E.at_total_us) (pct b.E.at_other_us b.E.at_total_us))
      rows
  in
  table "(a) READ, file in server cache (paper: RPC + memcpy, no disk)"
    (fun r -> r.E.at_read);
  print_newline ();
  table "(b) CREATE+DELETE, write-through to both disks (paper: disk-bound)"
    (fun r -> r.E.at_write);
  Printf.printf
    "\n(every simulated microsecond is charged to exactly one layer; rows\n\
    \ sum to 100%% by construction — see bin/bullet_trace for span trees)\n"

(* ---- Fig. 3: SUN NFS ---- *)

let fig3 () =
  header "FIG3 - SUN NFS baseline: READ and CREATE (paper Fig. 3)";
  let rows = E.fig3_nfs () in
  Printf.printf "(a) Delay (msec)\n";
  Printf.printf "  %-10s %12s %12s\n" "File Size" "READ" "CREATE";
  List.iter
    (fun (r : E.row) ->
      Printf.printf "  %-10s %12.2f %12.2f\n" (size_label r.E.size) (ms r.E.read_us) (ms r.E.write_us))
    rows;
  Printf.printf "\n(b) Bandwidth (Kbytes/sec)\n";
  Printf.printf "  %-10s %12s %12s\n" "File Size" "READ" "CREATE";
  List.iter
    (fun (r : E.row) ->
      Printf.printf "  %-10s %12.1f %12.1f\n" (size_label r.E.size)
        (E.bandwidth_kbs ~size:r.E.size ~us:r.E.read_us)
        (E.bandwidth_kbs ~size:r.E.size ~us:r.E.write_us))
    rows

(* ---- the §4 comparison claims ---- *)

let verdict ok = if ok then "holds" else "FAILS"

let compare_cmd () =
  header "CMP - Bullet vs NFS: the paper's Section 4 claims";
  let rows = E.compare_servers () in
  Printf.printf "  %-10s %14s %18s %16s %14s\n" "File Size" "read ratio" "bullet write KB/s"
    "nfs write KB/s" "nfs read KB/s";
  List.iter
    (fun c ->
      Printf.printf "  %-10s %14.2f %18.1f %16.1f %14.1f\n" (size_label c.E.size) c.E.read_ratio
        c.E.bullet_write_kbs c.E.nfs_write_kbs c.E.nfs_read_kbs)
    rows;
  print_newline ();
  let at size = List.find (fun c -> c.E.size = size) rows in
  let c1 = List.for_all (fun c -> c.E.read_ratio >= 3.0 && c.E.read_ratio <= 6.5) rows in
  Printf.printf "  C1 reads 3-6x faster at every size:            %s\n" (verdict c1);
  let big = at 1_048_576 in
  Printf.printf "  C2 ~10x write bandwidth at 1 MB (measured %.1fx): %s\n" big.E.write_ratio
    (verdict (big.E.write_ratio >= 7.0));
  let c3 =
    List.for_all
      (fun c -> c.E.size < 65_536 || c.E.bullet_write_kbs > c.E.nfs_read_kbs)
      rows
  in
  Printf.printf "  C3 bullet writes beat NFS reads above 64 KB:   %s\n" (verdict c3);
  let k64 = at 65_536 in
  let c4 =
    big.E.nfs_write_kbs < k64.E.nfs_write_kbs && big.E.nfs_read_kbs < k64.E.nfs_read_kbs
  in
  Printf.printf "  C4 NFS bandwidth dips at 1 MB:                 %s\n" (verdict c4)

(* ---- P-FACTOR ---- *)

let pfactor () =
  header "PFACT - create delay vs Paranoia Factor (64 KB file)";
  Printf.printf "  %-10s %14s\n" "P-FACTOR" "CREATE (msec)";
  List.iter (fun (p, us) -> Printf.printf "  %-10d %14.2f\n" p (ms us)) (E.pfactor_sweep ());
  Printf.printf
    "  (p=0 replies from RAM; p=1 waits for one disk; p=2 waits for both,\n\
    \   written in parallel - the paper's measurement configuration)\n"

(* ---- fragmentation ---- *)

let frag () =
  header "FRAG - external fragmentation and the 3 a.m. compaction";
  let r = E.fragmentation_experiment () in
  Printf.printf "  files written under churn        %d\n" r.E.files_written;
  Printf.printf "  disk utilisation at pressure     %.1f%%\n" (100. *. r.E.disk_utilisation);
  Printf.printf "  fragmentation before             %.3f\n" r.E.fragmentation_before;
  Printf.printf "  largest free hole before         %d blocks\n" r.E.largest_hole_before;
  Printf.printf "  compaction moved                 %d blocks\n" r.E.compaction_moved_blocks;
  Printf.printf "  compaction took                  %.1f s (simulated)\n"
    (float_of_int r.E.compaction_us /. 1e6);
  Printf.printf "  fragmentation after              %.3f\n" r.E.fragmentation_after;
  Printf.printf
    "  (the paper's trade-off: contiguous storage wastes space between\n\
    \   files; a nightly compaction reclaims it)\n"

(* ---- cache ---- *)

let cache () =
  header "CACHE - RAM cache behaviour (256 KB file, 2 MB cache)";
  let r = E.cache_experiment () in
  Printf.printf "  read, cache hit                  %8.2f ms\n" (ms r.E.hit_us);
  Printf.printf "  read, cache miss (disk load)     %8.2f ms\n" (ms r.E.miss_us);
  Printf.printf "  read, cold server                %8.2f ms\n" (ms r.E.cold_us);
  Printf.printf "  LRU hit rate, working set fits   %8.1f%%\n" (100. *. r.E.hit_rate_working_set);
  Printf.printf "  LRU hit rate, working set 2x     %8.1f%%\n" (100. *. r.E.hit_rate_thrash)

(* ---- ablations ---- *)

let ablation () =
  header "ABL1 - allocation policy ablation (first-fit vs best-fit)";
  let r = E.allocation_ablation () in
  Printf.printf "  %-12s %16s %16s\n" "policy" "fragmentation" "create failures";
  Printf.printf "  %-12s %16.3f %16d\n" "first-fit" r.E.first_fit_frag r.E.first_fit_failures;
  Printf.printf "  %-12s %16.3f %16d\n" "best-fit" r.E.best_fit_frag r.E.best_fit_failures;
  header "ABL2 - the append problem (50 x 120 B onto a 64 KB file)";
  let a = E.append_ablation () in
  Printf.printf "  %-34s %12s\n" "strategy" "total (ms)";
  Printf.printf "  %-34s %12.1f\n" "log server (segment chain)" (ms a.E.log_server_us);
  Printf.printf "  %-34s %12.1f\n" "BULLET.MODIFY (server-side copy)" (ms a.E.modify_us);
  Printf.printf "  %-34s %12.1f\n" "naive read + re-create" (ms a.E.naive_us);
  Printf.printf
    "  (the paper: \"For log files we have implemented a separate server\")\n";
  header "ABL3 - immediate files (reference [1]) on the block baseline (60 B file)";
  let i = E.immediate_ablation () in
  Printf.printf "  %-28s %14s %14s\n" "" "write (ms)" "read (ms)";
  Printf.printf "  %-28s %14.2f %14.2f\n" "stock baseline" (ms i.E.plain_write_us) (ms i.E.plain_read_us);
  Printf.printf "  %-28s %14.2f %14.2f\n" "with immediate files" (ms i.E.immediate_write_us)
    (ms i.E.immediate_read_us);
  Printf.printf "  %-28s %14s %14.2f\n" "Bullet (for scale)" "-" (ms i.E.bullet_read_us);
  Printf.printf
    "  (inode-inline data removes the per-file data-block access; the\n\
    \   large-file gap is untouched - that one is the Bullet design)\n"

(* ---- trace replay ---- *)

let trace () =
  header "TRACE - BSD-style trace replay, Bullet vs NFS end to end";
  let r = E.trace_replay () in
  Printf.printf "  operations                       %d\n" r.E.ops;
  Printf.printf "  Bullet total                     %10.1f ms\n" (ms r.E.bullet_total_us);
  Printf.printf "  NFS total                        %10.1f ms\n" (ms r.E.nfs_total_us);
  Printf.printf "  speedup                          %10.2f x\n" r.E.speedup;
  Printf.printf "  per-op latency p50 / p99         Bullet %.1f / %.1f ms, NFS %.1f / %.1f ms\n"
    r.E.bullet_p50_ms r.E.bullet_p99_ms r.E.nfs_p50_ms r.E.nfs_p99_ms;
  Printf.printf "\n  speedup vs update-heaviness (where immutability costs):\n";
  Printf.printf "  %-18s %10s\n" "update fraction" "speedup";
  List.iter
    (fun (fraction, speedup) -> Printf.printf "  %-18.2f %9.2fx\n" fraction speedup)
    (E.mix_sweep ());
  Printf.printf
    "  (small in-place updates make Bullet copy the whole file; the paper\n\
    \   concedes this regime to the log server and to sharding)\n"


(* ---- parameter sweeps ---- *)

let sweep () =
  header "SWEEP1 - read bandwidth vs file size (Bullet, cache hits)";
  let sizes = [ 512; 2_048; 8_192; 32_768; 131_072; 524_288; 2_097_152 ] in
  let rows = E.fig2_bullet ~sizes () in
  Printf.printf "  %-10s %12s %14s\n" "File Size" "READ (ms)" "KB/s";
  let bar kbs = String.make (int_of_float (kbs /. 20.)) '#' in
  List.iter
    (fun (r : E.row) ->
      let kbs = E.bandwidth_kbs ~size:r.E.size ~us:r.E.read_us in
      Printf.printf "  %-10s %12.2f %14.1f  %s\n" (size_label r.E.size) (ms r.E.read_us) kbs
        (bar kbs))
    rows;
  Printf.printf "  (the curve saturates at the Ethernet's effective rate: whole-file\n";
  Printf.printf "   transfer amortises the fixed RPC cost away)\n";
  header "SWEEP2 - LRU hit rate vs cache size (4 MB working set)";
  Printf.printf "  %-10s %12s %16s\n" "cache" "hit rate" "mean read (ms)";
  List.iter
    (fun p ->
      Printf.printf "  %4d MB    %11.1f%% %16.2f\n" p.E.cache_mb (100. *. p.E.hit_rate)
        p.E.mean_read_ms)
    (E.cache_size_sweep ());
  header "SWEEP3 - CREATE delay (ms): P-FACTOR x file size";
  let matrix = E.pfactor_matrix () in
  Printf.printf "  %-10s %10s %10s %10s\n" "File Size" "p=0" "p=1" "p=2";
  List.iter
    (fun (size, cells) ->
      let at p = ms (List.assoc p cells) in
      Printf.printf "  %-10s %10.2f %10.2f %10.2f\n" (size_label size) (at 0) (at 1) (at 2))
    matrix;
  Printf.printf
    "  (the disk term p removes is fixed; the wire term grows with size,\n\
    \   so p=0's relative advantage shrinks for big files)\n";
  header "SWEEP4 - boot time vs inode-table size (whole table read into RAM)";
  Printf.printf "  %-12s %14s\n" "max files" "boot scan (ms)";
  List.iter
    (fun max_files ->
      let clock = Amoeba_sim.Clock.create () in
      let geometry = Amoeba_disk.Geometry.small ~sectors:131_072 in
      let d1 = Amoeba_disk.Block_device.create ~id:"b1" ~geometry ~clock in
      let d2 = Amoeba_disk.Block_device.create ~id:"b2" ~geometry ~clock in
      let mirror = Amoeba_disk.Mirror.create [ d1; d2 ] in
      Bullet_core.Server.format mirror ~max_files;
      let _, us =
        Amoeba_sim.Clock.elapsed clock (fun () ->
            ignore (Result.get_ok (Bullet_core.Inode_table.load mirror)))
      in
      Printf.printf "  %-12d %14.1f\n" max_files (ms us))
    [ 1_024; 8_192; 32_768; 131_072 ];
  Printf.printf
    "  (\"it reads the complete inode table into the RAM inode table and\n\
    \   keeps it there permanently\" - boot cost is one sequential read)\n"

(* ---- naming ---- *)

let naming () =
  header "NAMING - path resolution: server-side resolve vs stepwise lookups";
  let r = E.naming_experiment () in
  Printf.printf "  resolving a %d-component path:\n" r.E.depth;
  Printf.printf "  %-26s %14s %14s\n" "" "resolve (1 RPC)" "stepwise (N)";
  Printf.printf "  %-26s %13.1f %15.1f\n" "same Ethernet (ms)" (ms r.E.local_resolve_us)
    (ms r.E.local_stepwise_us);
  Printf.printf "  %-26s %13.1f %15.1f\n" "directory server abroad" (ms r.E.wide_resolve_us)
    (ms r.E.wide_stepwise_us);
  Printf.printf
    "  (one wide-area round trip vs one per component - why Amoeba's\n\
    \   directory server walks paths itself)\n"

(* ---- quantitative scalability ---- *)

let scale () =
  header "SCALE - closed-loop pool processors reading 4 KB files (100 ms think)";
  let r = E.scale_experiment () in
  Printf.printf "  measured server demand per read: Bullet %.2f ms, NFS %.2f ms\n"
    (ms r.E.bullet_service_us) (ms r.E.nfs_service_us);
  Printf.printf "  analytic saturation population:  Bullet %.0f clients, NFS %.0f clients\n\n"
    r.E.bullet_knee r.E.nfs_knee;
  Printf.printf "  %-8s | %26s | %26s\n" "" "Bullet" "NFS baseline";
  Printf.printf "  %-8s | %10s %10s %4s | %10s %10s %4s\n" "clients" "ops/s" "resp ms" "util"
    "ops/s" "resp ms" "util";
  List.iter2
    (fun (b : E.scale_point) (n : E.scale_point) ->
      Printf.printf "  %-8d | %10.1f %10.1f %3.0f%% | %10.1f %10.1f %3.0f%%\n" b.E.clients
        b.E.throughput_per_sec b.E.mean_response_ms (100. *. b.E.utilisation)
        n.E.throughput_per_sec n.E.mean_response_ms (100. *. n.E.utilisation))
    r.E.bullet_points r.E.nfs_points;
  Printf.printf
    "  (\"whole file transfer minimizes the load on the file server ...\n\
    \   allowing the service to be used on a larger scale\" - paper section 5)\n"

(* ---- geographic scalability ---- *)

let geo () =
  header "GEO - geographic scalability: one name space across countries (paper 2.1)";
  let r = E.geo_experiment () in
  Printf.printf "  64 KB read, replica at reader's site   %10.1f ms\n" (ms r.E.local_read_us);
  Printf.printf "  64 KB read, replica one gateway away   %10.1f ms\n" (ms r.E.regional_read_us);
  Printf.printf "  64 KB read, replica across the line    %10.1f ms\n" (ms r.E.wide_read_us);
  Printf.printf "  fetch from Norway picked replica at    %10s\n" r.E.nearest_pick;
  Printf.printf "  publish, single site                   %10.1f ms\n" (ms r.E.publish_local_us);
  Printf.printf "  publish + replica shipped abroad       %10.1f ms\n"
    (ms r.E.publish_replicated_us);
  Printf.printf
    "  (immutable files make replicas trivially consistent; readers are\n\
    \   served by the nearest copy)\n"

(* ---- Bechamel microbenchmarks of the real code ---- *)

(* ---- FAULTS: availability, recovery, loss ---- *)

let faults () =
  header "FAULTS - availability and recovery under a deterministic fault plan";
  let a = E.fault_availability () in
  Printf.printf "Drive failure at t=2s, repair+resync at t=6s, reads throughout:\n";
  Printf.printf "  client reads issued                  %12d\n" a.E.avail_ops;
  Printf.printf "  failed client reads                  %12d   (claim: 0)\n" a.E.avail_failed;
  Printf.printf "  reads served with a drive down       %12d\n" a.E.degraded_reads;
  Printf.printf "  p99 read latency, both drives        %12.2f ms\n" a.E.normal_p99_ms;
  Printf.printf "  p99 read latency, degraded           %12.2f ms\n" a.E.degraded_p99_ms;
  Printf.printf "  resync (whole-disk copy)             %12.1f ms\n" a.E.resync_ms;
  Printf.printf "\nMirror resync time vs disk size (one full-disk sequential copy):\n";
  Printf.printf "  %-10s %14s %16s\n" "Disk" "resync (ms)" "ms per MB";
  List.iter
    (fun (p : E.resync_point) ->
      Printf.printf "  %6d MB %14.1f %16.2f\n" p.E.disk_mb p.E.resync_ms
        (p.E.resync_ms /. float_of_int p.E.disk_mb))
    (E.resync_sweep ());
  Printf.printf "\nCrash-reboot time vs inode table size (boot = one table scan):\n";
  Printf.printf "  %-12s %14s\n" "Table" "reboot (ms)";
  List.iter
    (fun (p : E.reboot_point) ->
      Printf.printf "  %8d %16.1f\n" p.E.table_files p.E.reboot_ms)
    (E.reboot_sweep ());
  Printf.printf "\nGoodput under message loss (timeout 100 ms, <=10 attempts, xid dedup):\n";
  Printf.printf "  %-8s %8s %10s %8s %9s %10s %12s %8s %8s %8s\n" "Loss" "ops" "completed"
    "retries" "timeouts" "dup execs" "goodput KB/s" "p50 ms" "p95 ms" "p99 ms";
  List.iter
    (fun (p : E.loss_point) ->
      Printf.printf "  %5.0f %% %9d %10d %8d %9d %10d %12.1f %8.1f %8.1f %8.1f\n" p.E.loss_pct
        p.E.loss_ops p.E.loss_completed p.E.loss_retries p.E.loss_timeouts
        p.E.duplicate_executions p.E.goodput_kbs p.E.loss_p50_ms p.E.loss_p95_ms p.E.loss_p99_ms)
    (E.loss_sweep ());
  let c = E.crash_recovery () in
  Printf.printf "\nServer crash at t=2s, reboot at t=2.5s, reads every 50 ms:\n";
  Printf.printf "  client reads issued                  %12d\n" c.E.crash_ops;
  Printf.printf "  failed client reads                  %12d   (claim: 0)\n" c.E.crash_failed;
  Printf.printf "  scripted outage                      %12.1f ms\n" c.E.outage_ms;
  Printf.printf "  measured reboot (inode scan)         %12.1f ms\n" c.E.crash_reboot_ms;
  Printf.printf "  timeout retries spanning the outage  %12d\n" c.E.crash_retries;
  Printf.printf "  pre-crash capability still valid     %12s\n"
    (if c.E.pre_crash_file_ok then "yes" else "NO")

(* ---- RESYNC: online resync racing foreground reads ---- *)

let resync () =
  header "RESYNC - drive rejoin with online sectored resync (fail 2s, rejoin 4s)";
  let r = E.resync_experiment () in
  Printf.printf
    "Foreground reads every 10 ms; the rejoined drive drains one %s\n\
     batch per poll point, charged against the same disk clock:\n\n"
    "bounded";
  Printf.printf "  %-8s %-16s %10s %6s %9s %9s %9s\n" "window" "mirror state" "backlog"
    "reads" "p50 ms" "p95 ms" "p99 ms";
  List.iter
    (fun (w : E.resync_window) ->
      Printf.printf "  %5d ms %-16s %10d %6d %9.1f %9.1f %9.1f\n" w.E.w_start_ms w.E.w_state
        w.E.w_remaining w.E.w_ops w.E.w_p50_ms w.E.w_p95_ms w.E.w_p99_ms)
    r.E.rw_windows;
  Printf.printf "\n  client reads issued                  %12d\n" r.E.rw_ops;
  Printf.printf "  failed client reads                  %12d   (claim: 0)\n" r.E.rw_failed;
  Printf.printf "  resync steps / sectors copied        %8d / %d\n" r.E.rw_resync_steps
    r.E.rw_resync_sectors;
  Printf.printf "  reads that outran the scan (repairs) %8d / %d\n" r.E.rw_fallthroughs
    r.E.rw_read_repairs;
  Printf.printf "  online resync, rejoin to clean       %12.1f ms\n" r.E.rw_online_resync_ms;
  Printf.printf "  one resync batch costs at most       %12.1f ms\n" r.E.rw_step_cost_ms;
  Printf.printf "  slowest op, both drives clean        %12.1f ms\n" r.E.rw_normal_max_ms;
  Printf.printf "  slowest op anywhere                  %12.1f ms   (claim: << resync)\n"
    r.E.rw_max_op_ms;
  Printf.printf "  mirror clean at end                  %12s\n"
    (if r.E.rw_clean_at_end then "yes" else "NO");
  Printf.printf
    "  (no op waits for the whole copy: the worst op pays its own I/O\n\
    \   plus a couple of batches, vs the paper's stop-and-copy recovery)\n";
  let w = E.wan_fault_experiment () in
  Printf.printf "\nWAN link faults (25%% loss, then partition, then heal) on the wide line:\n";
  Printf.printf "  wide fetches under loss, failed      %8d / %d\n" w.E.wf_wide_failed
    w.E.wf_wide_ops;
  Printf.printf "  wide fetches under partition, failed %8d / %d   (claim: all)\n"
    w.E.wf_partition_failed w.E.wf_partition_ops;
  Printf.printf "  wide fetch after heal                %12s\n"
    (if w.E.wf_healed_ok then "ok" else "FAILED");
  Printf.printf "  local fetches throughout, failed     %8d / %d   (claim: 0)\n"
    w.E.wf_local_failed w.E.wf_local_ops;
  Printf.printf "  link drops (req / reply / partition) %6d / %d / %d\n"
    w.E.wf_link_request_drops w.E.wf_link_reply_drops w.E.wf_partition_drops;
  Printf.printf "  retries spent riding out the faults  %12d\n" w.E.wf_retries;
  Printf.printf "  local fetch, quiet vs faulted        %8d vs %d us   (claim: equal)\n"
    w.E.wf_quiet_local_us w.E.wf_faulted_local_us;
  let p = E.dir_pair_recovery () in
  Printf.printf "\nDirectory pair: primary crash mid-stream at 1s, heal at 3s:\n";
  Printf.printf "  directory mutations issued           %12d\n" p.E.pr_ops;
  Printf.printf "  failed mutations                     %12d   (claim: 0)\n" p.E.pr_failed;
  Printf.printf "  served by the survivor alone         %12d\n" p.E.pr_outage_ops;
  Printf.printf "  replicas diverged                    %12s\n"
    (match p.E.pr_diverged with None -> "no" | Some path -> "at " ^ path);
  Printf.printf "  canonical dumps byte-identical       %12s\n"
    (if p.E.pr_state_match then "yes" else "NO");
  Printf.printf "  primary back in duplex               %12s\n"
    (if p.E.pr_healed then "yes" else "NO")

(* ---- LOAD: multi-station concurrency and overload control ---- *)

(* Hand-rolled JSON with fixed float formatting so two runs of the
   deterministic experiment write byte-identical files. *)
let json_float f = Printf.sprintf "%.3f" f

let json_str s = Printf.sprintf "%S" s

let json_obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_str k ^ ":" ^ v) fields) ^ "}"

let json_arr items = "[" ^ String.concat "," items ^ "]"

let load_json (r : E.load_report) =
  let profile (p : E.load_profile) =
    json_obj
      [
        ("class", json_str p.E.lpr_class);
        ("traced_us", string_of_int p.E.lpr_traced_us);
        ( "segments",
          json_arr
            (List.map
               (fun (st, us) -> json_obj [ ("station", json_str st); ("us", string_of_int us) ])
               p.E.lpr_segments) );
      ]
  in
  let point (p : E.load_point) =
    json_obj
      [
        ("clients", string_of_int p.E.lp_clients);
        ("throughput_per_sec", json_float p.E.lp_throughput);
        ("mean_ms", json_float p.E.lp_mean_ms);
        ("p50_ms", json_float p.E.lp_p50_ms);
        ("p95_ms", json_float p.E.lp_p95_ms);
        ("p99_ms", json_float p.E.lp_p99_ms);
        ( "utilisation",
          json_obj (List.map (fun (st, u) -> (st, json_float u)) p.E.lp_util) );
      ]
  in
  let server (s : E.server_load) =
    json_obj
      [
        ("name", json_str s.E.sl_name);
        ("knee_clients", json_float s.E.sl_knee);
        ("serial_cap_per_sec", json_float s.E.sl_serial_cap_per_sec);
        ("knee_throughput_per_sec", json_float s.E.sl_knee_throughput);
        ("profiles", json_arr (List.map profile s.E.sl_profiles));
        ("points", json_arr (List.map point s.E.sl_points));
      ]
  in
  let overload (o : E.overload_point) =
    json_obj
      [
        ("policy", json_str o.E.ov_policy);
        ("goodput_per_sec", json_float o.E.ov_goodput);
        ("p99_ms", json_float o.E.ov_p99_ms);
        ("offered", string_of_int o.E.ov_offered);
        ("completed", string_of_int o.E.ov_completed);
        ("failed", string_of_int o.E.ov_failed);
        ("shed", string_of_int o.E.ov_shed);
        ("deadline_misses", string_of_int o.E.ov_deadline_misses);
        ("abandoned", string_of_int o.E.ov_abandoned);
        ("retried", string_of_int o.E.ov_retried);
        ("late", string_of_int o.E.ov_late);
      ]
  in
  json_obj
    [
      ("bullet", server r.E.lr_bullet);
      ("nfs", server r.E.lr_nfs);
      ("overload_clients", string_of_int r.E.lr_overload_clients);
      ("peak_goodput_per_sec", json_float r.E.lr_peak_goodput);
      ("overload", json_arr (List.map overload r.E.lr_overload));
    ]

let load () =
  header "LOAD - concurrent-server scaling and overload control";
  let r = E.load_experiment () in
  let server (s : E.server_load) =
    Printf.printf "\n%s: demand profiles traced from the real server (us per station):\n"
      s.E.sl_name;
    List.iter
      (fun (p : E.load_profile) ->
        Printf.printf "  %-10s %8d us  =  %s\n" p.E.lpr_class p.E.lpr_traced_us
          (String.concat " + "
             (List.map (fun (st, us) -> Printf.sprintf "%s:%d" st us) p.E.lpr_segments)))
      s.E.sl_profiles;
    Printf.printf
      "  analytic knee %.1f clients; serial bound %.1f req/s; measured at knee %.1f req/s\n"
      s.E.sl_knee s.E.sl_serial_cap_per_sec s.E.sl_knee_throughput;
    Printf.printf "  %-8s %10s %9s %9s %9s %9s   %s\n" "clients" "req/s" "mean ms" "p50 ms"
      "p95 ms" "p99 ms" "utilisation";
    List.iter
      (fun (p : E.load_point) ->
        Printf.printf "  %6d %12.1f %9.1f %9.1f %9.1f %9.1f   %s\n" p.E.lp_clients
          p.E.lp_throughput p.E.lp_mean_ms p.E.lp_p50_ms p.E.lp_p95_ms p.E.lp_p99_ms
          (String.concat " "
             (List.map (fun (st, u) -> Printf.sprintf "%s=%.2f" st u) p.E.lp_util)))
      s.E.sl_points
  in
  server r.E.lr_bullet;
  server r.E.lr_nfs;
  Printf.printf
    "\nOverload: %d clients (2x measured saturation) on bullet, accept limit 8,\n\
     retrying clients (4 attempts, 2 s patience, 50 ms doubling backoff):\n"
    r.E.lr_overload_clients;
  Printf.printf "  %-9s %11s %9s %8s %10s %7s %6s %6s %8s %7s %6s\n" "policy" "goodput/s"
    "p99 ms" "offered" "completed" "failed" "shed" "miss" "abandon" "retry" "late";
  List.iter
    (fun (o : E.overload_point) ->
      Printf.printf "  %-9s %11.1f %9.1f %8d %10d %7d %6d %6d %8d %7d %6d\n" o.E.ov_policy
        o.E.ov_goodput o.E.ov_p99_ms o.E.ov_offered o.E.ov_completed o.E.ov_failed o.E.ov_shed
        o.E.ov_deadline_misses o.E.ov_abandoned o.E.ov_retried o.E.ov_late)
    r.E.lr_overload;
  Printf.printf
    "  peak goodput over the plain sweep      %12.1f req/s\n\
    \  (claims: knee throughput beats the serial bound; Shed and Deadline\n\
    \   hold goodput within 10%% of peak at 2x saturation; Block + retries\n\
    \   collapses into late work - checked by the experiment's assertions)\n"
    r.E.lr_peak_goodput;
  let oc = open_out "BENCH_load.json" in
  output_string oc (load_json r);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  machine-readable copy written to BENCH_load.json\n"

(* ---- LEASE: the zero-RPC read fast path ---- *)

let lease_json (r : E.lease_report) =
  let profile (p : E.load_profile) =
    json_obj
      [
        ("class", json_str p.E.lpr_class);
        ("traced_us", string_of_int p.E.lpr_traced_us);
        ( "segments",
          json_arr
            (List.map
               (fun (st, us) -> json_obj [ ("station", json_str st); ("us", string_of_int us) ])
               p.E.lpr_segments) );
      ]
  in
  let fault (f : E.lease_fault) =
    json_obj
      [
        ("plan", json_str f.E.lf_plan);
        ("reads", string_of_int f.E.lf_reads);
        ("failed", string_of_int f.E.lf_failed);
        ("stale", string_of_int f.E.lf_stale);
        ("revalidations", string_of_int f.E.lf_revalidations);
        ("consistent", if f.E.lf_consistent then "true" else "false");
      ]
  in
  json_obj
    [
      ("cold_rpcs", string_of_int r.E.le_cold_rpcs);
      ("warm_reads", string_of_int r.E.le_warm_reads);
      ("warm_rpcs", string_of_int r.E.le_warm_rpcs);
      ("warm_read_us", string_of_int r.E.le_warm_read_us);
      ("trusted_hit_us", string_of_int r.E.le_trusted_hit_us);
      ("untrusted_hit_us", string_of_int r.E.le_untrusted_hit_us);
      ("untrusted_hit_rpcs", string_of_int r.E.le_untrusted_hit_rpcs);
      ("renew_rpcs", string_of_int r.E.le_renew_rpcs);
      ("forged_rejected", if r.E.le_forged_rejected then "true" else "false");
      ("faults", json_arr (List.map fault r.E.le_faults));
      ("hot_profile", profile r.E.le_hot_profile);
      ("hot_rpc_count", string_of_int r.E.le_hot_rpc_count);
      ("baseline_hot_profile", profile r.E.le_baseline_hot);
      ("baseline_knee_clients", json_float r.E.le_baseline_knee);
      ("baseline_knee_throughput_per_sec", json_float r.E.le_baseline_knee_throughput);
      ("leased_knee_clients", json_float r.E.le_leased_knee);
      ("leased_knee_throughput_per_sec", json_float r.E.le_leased_knee_throughput);
      ("server_evicted_bytes", string_of_int r.E.le_server_evicted_bytes);
      ("client_evicted_bytes", string_of_int r.E.le_client_evicted_bytes);
    ]

let lease () =
  header "LEASE - zero-RPC reads: local verification + leased client caching";
  let r = E.lease_experiment () in
  Printf.printf "\nRPCs per read on a trusted station (holds the server's sealer):\n";
  Printf.printf "  %-34s %6s %12s\n" "operation" "RPCs" "latency us";
  Printf.printf "  %-34s %6d %12s\n" "cold read (grant + SIZE + READ)" r.E.le_cold_rpcs "-";
  Printf.printf "  %-34s %6d %12d\n"
    (Printf.sprintf "warm read x%d (leased cache hit)" r.E.le_warm_reads)
    r.E.le_warm_rpcs r.E.le_warm_read_us;
  Printf.printf "  %-34s %6d %12d\n" "warm read, untrusted station" r.E.le_untrusted_hit_rpcs
    r.E.le_untrusted_hit_us;
  Printf.printf "  %-34s %6d %12s\n" "read after lease expiry (renew)" r.E.le_renew_rpcs "-";
  Printf.printf "  forged check field rejected locally: %s\n"
    (if r.E.le_forged_rejected then "yes" else "NO");
  Printf.printf "\nFault plans (stale must be 0 everywhere):\n";
  Printf.printf "  %-24s %6s %7s %6s %8s %11s\n" "plan" "reads" "failed" "stale" "revalid"
    "consistent";
  List.iter
    (fun (f : E.lease_fault) ->
      Printf.printf "  %-24s %6d %7d %6d %8d %11s\n" f.E.lf_plan f.E.lf_reads f.E.lf_failed
        f.E.lf_stale f.E.lf_revalidations
        (if f.E.lf_consistent then "yes" else "NO"))
    r.E.le_faults;
  let segs (p : E.load_profile) =
    String.concat " + " (List.map (fun (st, us) -> Printf.sprintf "%s:%d" st us) p.E.lpr_segments)
  in
  Printf.printf "\nHot-read demand profile (us per station; rpc spans in trace: %d):\n"
    r.E.le_hot_rpc_count;
  Printf.printf "  %-10s %8d us  =  %s\n" "plain RPC" r.E.le_baseline_hot.E.lpr_traced_us
    (segs r.E.le_baseline_hot);
  Printf.printf "  %-10s %8d us  =  %s\n" "leased" r.E.le_hot_profile.E.lpr_traced_us
    (segs r.E.le_hot_profile);
  Printf.printf "\nLOAD knee, same mix with the hot class leased:\n";
  Printf.printf "  %-10s %14s %16s\n" "" "knee clients" "throughput req/s";
  Printf.printf "  %-10s %14.1f %16.1f\n" "baseline" r.E.le_baseline_knee
    r.E.le_baseline_knee_throughput;
  Printf.printf "  %-10s %14.1f %16.1f\n" "leased" r.E.le_leased_knee
    r.E.le_leased_knee_throughput;
  Printf.printf "\nEviction traffic under memory pressure (same counter, both ends):\n";
  Printf.printf "  %-14s %10s\n" "cache" "bytes";
  Printf.printf "  %-14s %10d\n" "server RAM" r.E.le_server_evicted_bytes;
  Printf.printf "  %-14s %10d\n" "client leased" r.E.le_client_evicted_bytes;
  let oc = open_out "BENCH_lease.json" in
  output_string oc (lease_json r);
  output_char oc '\n';
  close_out oc;
  Printf.printf "  machine-readable copy written to BENCH_lease.json\n"

(* ---- METRICS: live health, SLO burn, STD_STATUS ---- *)

let metrics_json (r : E.metrics_report) =
  let lbl = Amoeba_metrics.Health.state_label in
  let scenario (s : E.metrics_scenario) =
    json_obj
      [
        ("name", json_str s.E.ms_name);
        ("interval_us", string_of_int s.E.ms_interval_us);
        ("snapshots", string_of_int (List.length s.E.ms_snapshots));
        ( "transitions",
          json_arr
            (List.map
               (fun (at, st) ->
                 json_obj [ ("at_us", string_of_int at); ("state", json_str (lbl st)) ])
               s.E.ms_transitions) );
        ( "alerts",
          json_arr
            (List.map
               (fun (at, name, firing) ->
                 json_obj
                   [
                     ("at_us", string_of_int at);
                     ("alert", json_str name);
                     ("firing", (if firing then "true" else "false"));
                   ])
               s.E.ms_alerts) );
        ("final", json_str (lbl s.E.ms_final));
      ]
  in
  json_obj
    [
      ("scenarios", json_arr (List.map scenario r.E.mx_scenarios));
      ("status_metrics", string_of_int r.E.mx_status_metrics);
      ("status_bytes", string_of_int r.E.mx_status_bytes);
      ("roundtrip_ok", (if r.E.mx_roundtrip_ok then "true" else "false"));
    ]

let metrics () =
  header "METRICS - live health states + SLO burn over scripted fault plans";
  let r = E.metrics_experiment () in
  List.iter
    (fun (s : E.metrics_scenario) ->
      Printf.printf "\n%s (scrape every %d ms, %d snapshots):\n" s.E.ms_name
        (s.E.ms_interval_us / 1000)
        (List.length s.E.ms_snapshots);
      Printf.printf "  health  %s\n"
        (String.concat " -> "
           (List.map
              (fun (at, st) ->
                Printf.sprintf "%s@%.1fs" (Amoeba_metrics.Health.state_label st) (ms at /. 1000.))
              s.E.ms_transitions));
      if s.E.ms_alerts = [] then Printf.printf "  alerts  (none)\n"
      else
        List.iter
          (fun (at, name, firing) ->
            Printf.printf "  alert   %-16s %-5s at %.1f s\n" name
              (if firing then "fire" else "clear")
              (ms at /. 1000.))
          s.E.ms_alerts)
    r.E.mx_scenarios;
  Printf.printf "\nSTD_STATUS snapshot: %d metrics in %d bytes, codec roundtrip %s\n"
    r.E.mx_status_metrics r.E.mx_status_bytes
    (if r.E.mx_roundtrip_ok then "ok" else "BROKEN");
  let oc = open_out "BENCH_metrics.json" in
  output_string oc (metrics_json r);
  output_char oc '\n';
  close_out oc;
  (* every scraped snapshot in text exposition form — the widest surface
     a CI double-run can byte-diff *)
  let oc = open_out "BENCH_metrics_dump.txt" in
  output_string oc (E.metrics_dump r);
  close_out oc;
  Printf.printf "  machine-readable copy written to BENCH_metrics.json\n";
  Printf.printf "  full snapshot dump written to BENCH_metrics_dump.txt\n"

(* ---- TXN: atomic multi-object operations ---- *)

let txn_json (r : E.txn_report) =
  let fault (f : E.txn_fault) =
    json_obj
      [
        ("plan", json_str f.E.tf_plan);
        ("scenario", json_str f.E.tf_scenario);
        ("outcome", json_str f.E.tf_outcome);
        ("crashed", (if f.E.tf_crashed then "true" else "false"));
        ("in_doubt", string_of_int f.E.tf_in_doubt_before);
        ("resolved_commits", string_of_int f.E.tf_resolved_commits);
        ("resolved_aborts", string_of_int f.E.tf_resolved_aborts);
        ("atomic", (if f.E.tf_atomic then "true" else "false"));
        ("orphans", string_of_int f.E.tf_orphans);
        ("pending", string_of_int f.E.tf_pending);
        ("dumps_equal", (if f.E.tf_dumps_equal then "true" else "false"));
      ]
  in
  json_obj
    [
      ( "quiet",
        json_arr
          (List.map
             (fun (n, o) -> json_obj [ ("scenario", json_str n); ("outcome", json_str o) ])
             r.E.tx_quiet) );
      ("faults", json_arr (List.map fault r.E.tx_faults));
      ("stuck_state", json_str r.E.tx_stuck_label);
      ("status_has_gauges", (if r.E.tx_status_has_gauges then "true" else "false"));
    ]

let txn () =
  header "TXN - atomic multi-object operations, every 2PC edge fault-planned";
  let r = E.txn_experiment () in
  Printf.printf "\nQuiet baseline (no faults):\n";
  List.iter (fun (n, o) -> Printf.printf "  %-24s %s\n" n o) r.E.tx_quiet;
  Printf.printf "\nFault plans (atomic must be yes, orphans and residue 0 everywhere):\n";
  Printf.printf "  %-32s %-20s %-10s %6s %8s %7s %7s %6s\n" "plan" "scenario" "outcome"
    "doubt" "resolved" "atomic" "orphans" "equal";
  List.iter
    (fun (f : E.txn_fault) ->
      Printf.printf "  %-32s %-20s %-10s %6d %5d/%-2d %7s %7d %6s\n" f.E.tf_plan
        f.E.tf_scenario f.E.tf_outcome f.E.tf_in_doubt_before f.E.tf_resolved_commits
        f.E.tf_resolved_aborts
        (if f.E.tf_atomic then "yes" else "NO")
        f.E.tf_orphans
        (if f.E.tf_dumps_equal then "yes" else "NO"))
    r.E.tx_faults;
  Printf.printf "\nStuck-coordinator health walk:\n";
  List.iter
    (fun (at, label) -> Printf.printf "  %-16s at %.1f s\n" label (ms at /. 1000.))
    r.E.tx_health;
  Printf.printf "STD_STATUS carries txn.* gauges: %s\n"
    (if r.E.tx_status_has_gauges then "yes" else "NO");
  let oc = open_out "BENCH_txn.json" in
  output_string oc (txn_json r);
  output_char oc '\n';
  close_out oc;
  let oc = open_out "BENCH_txn_dump.txt" in
  output_string oc (E.txn_dump r);
  close_out oc;
  Printf.printf "  machine-readable copy written to BENCH_txn.json\n";
  Printf.printf "  full dump written to BENCH_txn_dump.txt\n"

(* ---- CLUSTER: sharded multi-server rebalancing ---- *)

let cluster_json (r : E.cluster_report) (b : E.cluster_bench) =
  let lbl = Amoeba_metrics.Health.state_label in
  let lo, hi = r.E.cl_spread in
  let point (p : E.cluster_bench_point) =
    json_obj
      [
        ("objects", string_of_int p.E.cb_objects);
        ("delta_shards", string_of_int p.E.cb_delta_shards);
        ("steps", string_of_int p.E.cb_steps);
        ("copied", string_of_int p.E.cb_copied);
        ("rebalance_us", string_of_int p.E.cb_rebalance_us);
      ]
  in
  json_obj
    [
      ("objects", string_of_int r.E.cl_objects);
      ("live_servers", string_of_int r.E.cl_live_servers);
      ("join_delta", string_of_int r.E.cl_join_delta);
      ("join_expected", string_of_int r.E.cl_join_expected);
      ("untouched", string_of_int r.E.cl_untouched);
      ("untouched_moved", string_of_int r.E.cl_untouched_moved);
      ("kill_fired", (if r.E.cl_kill_fired then "true" else "false"));
      ("polled_reads", string_of_int r.E.cl_polled_reads);
      ("unreadable", string_of_int r.E.cl_unreadable);
      ("fallthroughs", string_of_int r.E.cl_fallthroughs);
      ("read_repairs", string_of_int r.E.cl_read_repairs);
      ("migrated", string_of_int r.E.cl_migrated);
      ("under_peak", string_of_int r.E.cl_under_peak);
      ("under_final", string_of_int r.E.cl_under_final);
      ("spread_min", string_of_int lo);
      ("spread_max", string_of_int hi);
      ( "transitions",
        json_arr
          (List.map
             (fun (at, st) ->
               json_obj [ ("at_us", string_of_int at); ("state", json_str (lbl st)) ])
             r.E.cl_scenario.E.ms_transitions) );
      ("double_run_identical", (if r.E.cl_double_run_identical then "true" else "false"));
      ("status_has_gauges", (if r.E.cl_status_has_gauges then "true" else "false"));
      ("points", json_arr (List.map point b.E.cb_points));
      ("quiet_reads", string_of_int b.E.cb_quiet_reads);
      ("quiet_us", string_of_int b.E.cb_quiet_us);
      ("migrate_reads", string_of_int b.E.cb_migrate_reads);
      ("migrate_us", string_of_int b.E.cb_migrate_us);
    ]

let cluster () =
  header "CLUSTER - sharded multi-server Bullet: join, kill, rebalance";
  let r = E.cluster_experiment () in
  let b = E.cluster_bench () in
  Printf.printf "\nEpisode (N=4 join, scripted shard_kill mid-drain, R=2):\n";
  Printf.printf "  join delta        %d shards (ring-computed %d)\n" r.E.cl_join_delta
    r.E.cl_join_expected;
  Printf.printf "  foreground reads  %d, unreadable %d\n" r.E.cl_polled_reads r.E.cl_unreadable;
  Printf.printf "  fallthroughs      %d (read-repairs %d)\n" r.E.cl_fallthroughs
    r.E.cl_read_repairs;
  Printf.printf "  migrated objects  %d\n" r.E.cl_migrated;
  Printf.printf "  under-replicated  peak %d, final %d\n" r.E.cl_under_peak r.E.cl_under_final;
  Printf.printf "  health  %s\n"
    (String.concat " -> "
       (List.map
          (fun (at, st) ->
            Printf.sprintf "%s@%.1fs" (Amoeba_metrics.Health.state_label st) (ms at /. 1000.))
          r.E.cl_scenario.E.ms_transitions));
  Printf.printf "\nRebalance cost vs object count (full drain after the fourth join):\n";
  Printf.printf "  %-10s %12s %8s %8s %14s\n" "objects" "delta shards" "steps" "copied"
    "drain (ms)";
  List.iter
    (fun (p : E.cluster_bench_point) ->
      Printf.printf "  %-10d %12d %8d %8d %14.1f\n" p.E.cb_objects p.E.cb_delta_shards
        p.E.cb_steps p.E.cb_copied (ms p.E.cb_rebalance_us))
    b.E.cb_points;
  let per_read n us = ms us /. float_of_int n in
  Printf.printf "\nGoodput (per-read virtual ms, same 96-read mix):\n";
  Printf.printf "  quiet        %8.2f ms/read\n" (per_read b.E.cb_quiet_reads b.E.cb_quiet_us);
  Printf.printf "  migrating    %8.2f ms/read (one bounded rebalance step per read)\n"
    (per_read b.E.cb_migrate_reads b.E.cb_migrate_us);
  let oc = open_out "BENCH_cluster.json" in
  output_string oc (cluster_json r b);
  output_char oc '\n';
  close_out oc;
  let oc = open_out "BENCH_cluster_dump.txt" in
  output_string oc (E.cluster_dump r);
  close_out oc;
  Printf.printf "  machine-readable copy written to BENCH_cluster.json\n";
  Printf.printf "  full dump written to BENCH_cluster_dump.txt\n"

let micro () =
  header "MICRO - Bechamel microbenchmarks (real wall-clock, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let sealer = Amoeba_cap.Sealer.of_passphrase "bench" in
  let prng = Amoeba_sim.Prng.create ~seed:1L in
  let random = Amoeba_cap.Sealer.fresh_random sealer prng in
  let rights = Amoeba_cap.Rights.all in
  let check = Amoeba_cap.Sealer.seal sealer ~random ~rights in
  let cap =
    Amoeba_cap.Capability.v ~port:(Amoeba_cap.Port.of_int64 1L) ~obj:1 ~rights ~check
  in
  let inode =
    { Bullet_core.Layout.random = 0x1234L; index = 3; first_block = 99; size_bytes = 4096 }
  in
  let inode_buf = Bytes.create Bullet_core.Layout.inode_bytes in
  let alloc_cycle () =
    let a = Bullet_core.Extent_alloc.create ~start:0 ~length:4096 () in
    let rec go n =
      if n > 0 then begin
        match Bullet_core.Extent_alloc.alloc a 16 with
        | Some s ->
          Bullet_core.Extent_alloc.free a ~start:s ~length:16;
          go (n - 1)
        | None -> ()
      end
    in
    go 32
  in
  let cache_cycle =
    let cache =
      Bullet_core.Cache.create ~capacity:65_536 ~max_rnodes:16 ~on_evict:(fun ~inode:_ ~rnode:_ -> ())
    in
    let data = Bytes.create 1024 in
    fun () ->
      match Bullet_core.Cache.insert cache ~inode:1 data with
      | Some rnode ->
        ignore (Bullet_core.Cache.get cache ~rnode);
        Bullet_core.Cache.remove cache ~rnode
      | None -> ()
  in
  let tests =
    [
      Test.make ~name:"xtea_seal" (Staged.stage (fun () -> ignore (Amoeba_cap.Sealer.seal sealer ~random ~rights)));
      Test.make ~name:"xtea_verify" (Staged.stage (fun () -> ignore (Amoeba_cap.Sealer.verify sealer ~random ~cap)));
      Test.make ~name:"inode_codec"
        (Staged.stage (fun () ->
             Bullet_core.Layout.encode_inode inode inode_buf 0;
             ignore (Bullet_core.Layout.decode_inode inode_buf 0)));
      Test.make ~name:"extent_alloc_free_x32" (Staged.stage alloc_cycle);
      Test.make ~name:"cache_insert_get_remove_1k" (Staged.stage cache_cycle);
      Test.make ~name:"prng_next" (Staged.stage (fun () -> ignore (Amoeba_sim.Prng.next_int64 prng)));
    ]
  in
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
    let raw = Benchmark.all cfg instances test in
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let print_results name results =
    Hashtbl.iter
      (fun _label result ->
        match Bechamel.Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "  %-30s %12.1f ns/run\n" name est
        | _ -> Printf.printf "  %-30s %12s\n" name "n/a")
      results
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"g" [ test ]) in
      print_results (Test.name test) results)
    tests

(* ---- driver ---- *)

let all_benches =
  [
    ("fig2", fig2);
    ("attrib", attrib);
    ("fig3", fig3);
    ("compare", compare_cmd);
    ("pfactor", pfactor);
    ("frag", frag);
    ("cache", cache);
    ("ablation", ablation);
    ("trace", trace);
    ("sweep", sweep);
    ("scale", scale);
    ("naming", naming);
    ("geo", geo);
    ("faults", faults);
    ("resync", resync);
    ("load", load);
    ("lease", lease);
    ("metrics", metrics);
    ("txn", txn);
    ("cluster", cluster);
    ("micro", micro);
  ]

let () =
  let requested = List.tl (Array.to_list Sys.argv) in
  let chosen =
    if requested = [] then all_benches
    else
      List.filter_map
        (fun name ->
          match List.assoc_opt name all_benches with
          | Some f -> Some (name, f)
          | None ->
            Printf.eprintf "unknown bench %S (have: %s)\n" name
              (String.concat ", " (List.map fst all_benches));
            exit 2)
        requested
  in
  Printf.printf "Bullet file server evaluation - reproduction of ICDCS 1989 tables\n";
  List.iter (fun (_, f) -> f ()) chosen;
  (* under AMOEBA_TIE_CHECK=1 (the CI determinism jobs), fail loudly if
     any scenario scheduled two same-(time, prio) events unpinned *)
  let module Eq = Amoeba_sim.Event_queue in
  if Eq.tie_check_enabled () then begin
    match Eq.ties () with
    | [] -> ()
    | ties ->
      List.iter (fun t -> Printf.eprintf "%s\n" (Eq.tie_to_string t)) ties;
      Printf.eprintf "bench: %d event-queue tie(s) detected\n" (List.length ties);
      exit 1
  end
